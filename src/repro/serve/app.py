"""The ``repro serve`` daemon: a long-running CQA service.

One :class:`ReproServer` owns one database (usually a
:class:`~repro.storage.store.PersistentDatabase`) for its whole
lifetime, so everything the batch CLI rebuilds per invocation stays
warm across requests: the FO plan cache, the SQL statement cache and
integer-encoded mirror, the forked parallel worker pools, and every
registered incremental view.

Concurrency model
-----------------

The HTTP front end is a single asyncio event loop; engine work runs in
a thread pool so the loop stays responsive.  A write-preferring
readers/writer lock keeps query execution consistent with fact
batches: any number of reads (``/v1/certain``, ``/v1/answers``,
view-change reads) overlap each other, while a ``/v1/facts`` batch
holds the database exclusively — so a read never observes a torn
batch, and ``clock`` values in responses are taken under the same
lock as the answers they describe.  Admission control reuses the
parallel layer's sizing rule (:func:`repro.parallel.admission_slots`):
at most that many engine calls execute concurrently; the rest queue.

Long-polling
------------

``GET /v1/views/{name}/changes?since=C&wait=S`` answers immediately
when the view has moved past clock ``C``, and otherwise parks on a
broadcast event that every committed batch sets (the changelog
subscriber hops from the committing thread onto the event loop via
``call_soon_threadsafe``).  Responses compose: applying the returned
``inserted``/``deleted`` to the answers at ``since`` yields the
answers at ``version``.

Every request runs under an obs span tagged with a server-assigned
request id; with ``--trace-out`` the span tree of each request is
appended to a JSONL trace file (`docs/trace.schema.json` shape).
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import os
import pathlib
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.atoms import RelationSchema
from ..core.parser import ParseError, parse_query
from ..core.query import QueryError
from ..core.terms import Variable
from ..cqa.engine import CertaintyEngine
from ..cqa.rewriting import NotInFO
from ..db.database import Database, SchemaError
from ..incremental.views import StaleVersionError, View, view_manager
from ..obs.metrics import collect_metrics
from ..obs.options import ExecutionOptions, OptionsError
from ..obs.trace import Tracer
from ..parallel import admission_slots, release_database
from .http import HttpError, Request, json_body, read_request, response_bytes
from .protocol import (
    SCHEMA_VERSION,
    answers_digest,
    changes_payload,
    error_payload,
    row_from_wire,
    rows_to_wire,
)

__all__ = ["ReproServer", "SERVE_VIEWS_FILE"]

#: Manifest of named views registered through the serve API, kept in
#: the store directory (distinct from the store's own ``views.json``,
#: which holds unnamed durable views registered through the library).
SERVE_VIEWS_FILE = "serve_views.json"

#: Cap on per-query CertaintyEngine instances kept warm.
_ENGINE_CACHE_LIMIT = 128

#: Longest single long-poll wait (clients re-arm; keeps sockets honest).
_MAX_WAIT_SECONDS = 30.0

_VIEW_NAME_MAX = 128


class _RWLock:
    """A write-preferring asyncio readers/writer lock.

    Readers share; a writer excludes everyone.  Once a writer is
    waiting, new readers queue behind it so a steady read load cannot
    starve fact batches.
    """

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextlib.asynccontextmanager
    async def read_locked(self):
        async with self._cond:
            await self._cond.wait_for(
                lambda: not self._writing and not self._writers_waiting
            )
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextlib.asynccontextmanager
    async def write_locked(self):
        async with self._cond:
            self._writers_waiting += 1
            try:
                await self._cond.wait_for(
                    lambda: not self._writing and not self._readers
                )
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            async with self._cond:
                self._writing = False
                self._cond.notify_all()


def _expect(body: Any, allowed: Tuple[str, ...],
            required: Tuple[str, ...]) -> Dict[str, Any]:
    """Validate a JSON request body's shape (object, known keys only)."""
    if not isinstance(body, dict):
        raise HttpError(400, "bad-request", "request body must be a JSON object")
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise HttpError(
            400, "bad-request",
            f"unknown field(s) {unknown}; expected a subset of {sorted(allowed)}",
        )
    for key in required:
        if key not in body:
            raise HttpError(400, "bad-request", f"missing required field {key!r}")
    return body

def _string_field(body: Dict[str, Any], key: str) -> str:
    value = body[key]
    if not isinstance(value, str) or not value.strip():
        raise HttpError(400, "bad-request",
                        f"field {key!r} must be a non-empty string")
    return value


def _free_field(body: Dict[str, Any]) -> Tuple[str, ...]:
    names = body.get("free", [])
    if not isinstance(names, list) or not all(
        isinstance(n, str) and n for n in names
    ):
        raise HttpError(400, "bad-request",
                        "field 'free' must be a list of variable names")
    return tuple(names)


def _options_field(body: Dict[str, Any]) -> ExecutionOptions:
    raw = body.get("options")
    if isinstance(raw, dict):
        for banned in ("trace", "trace_file"):
            if banned in raw:
                raise HttpError(
                    400, "bad-options",
                    f"option {banned!r} is not accepted over the wire; "
                    "tracing is configured server-side via --trace-out",
                )
    try:
        return ExecutionOptions.coerce(raw)
    except OptionsError as exc:
        raise HttpError(400, "bad-options", str(exc))
    except TypeError as exc:
        raise HttpError(400, "bad-options", str(exc))


class ReproServer:
    """The long-running CQA service around one database.

    Parameters
    ----------
    db:
        The database to serve — a plain :class:`Database` or a
        :class:`~repro.storage.store.PersistentDatabase` (writes then
        go through the WAL and views re-register across restarts).
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    jobs:
        Admission width *and* the default worker count for
        ``method="parallel"`` requests that do not set their own.
    trace_file:
        Append every request's span tree to this JSONL file.
    """

    def __init__(self, db: Database, *, host: str = "127.0.0.1",
                 port: int = 8100, jobs: Optional[int] = None,
                 trace_file: Optional[str] = None,
                 history_limit: int = 256):
        self.db = db
        self.host = host
        self.port = port
        self.jobs = jobs
        self.trace_file = trace_file
        self._slots = admission_slots(jobs if jobs is not None
                                      else (os.cpu_count() or 1))
        self._rw = _RWLock()
        self._admission: Optional[asyncio.Semaphore] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self._slots + 1, thread_name_prefix="repro-serve"
        )
        self._engines: Dict[str, CertaintyEngine] = {}
        self._views: Dict[str, View] = {}
        self._view_specs: Dict[str, Dict[str, Any]] = {}
        self._manager = view_manager(db, history_limit=history_limit)
        self._ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._commit_event: Optional[asyncio.Event] = None
        self._closing: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()
        self._started_at = time.monotonic()
        self._counters: Dict[str, Any] = {
            "requests_total": 0,
            "errors_total": 0,
            "in_flight": 0,
            "long_poll_waits": 0,
            "commits_broadcast": 0,
            "admission_slots": self._slots,
            "endpoints": {},
        }
        self._routes: Dict[Tuple[str, str], Callable] = {
            ("POST", "/v1/certain"): self._ep_certain,
            ("POST", "/v1/answers"): self._ep_answers,
            ("POST", "/v1/facts"): self._ep_facts,
            ("POST", "/v1/views"): self._ep_register_view,
            ("GET", "/v1/views"): self._ep_list_views,
            ("GET", "/v1/metrics"): self._ep_metrics,
            ("GET", "/v1/healthz"): self._ep_healthz,
        }
        self._load_named_views()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and attach the changelog bridge."""
        self._loop = asyncio.get_running_loop()
        self._admission = asyncio.Semaphore(self._slots)
        self._commit_event = asyncio.Event()
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=256 * 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.db.subscribe(self._on_commit)

    async def run(self) -> None:
        """Serve until :meth:`request_shutdown`, then tear down."""
        await self.start()
        assert self._closing is not None
        try:
            await self._closing.wait()
        finally:
            await self.shutdown()

    def request_shutdown(self) -> None:
        """Begin a graceful stop (signal-handler safe on the loop)."""
        if self._closing is not None and not self._closing.is_set():
            self._closing.set()
            self._wake_pollers()

    async def shutdown(self) -> None:
        """Drain connections and release every held resource."""
        if self._closing is not None:
            self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._wake_pollers()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                self._conn_tasks, timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        with contextlib.suppress(ValueError):
            self.db.unsubscribe(self._on_commit)
        self._executor.shutdown(wait=True)
        release_database(self.db)
        if hasattr(self.db, "close") and getattr(self.db, "is_open", False):
            self.db.close()

    # ------------------------------------------------------------------
    # changelog bridge + long-poll broadcast
    # ------------------------------------------------------------------

    def _on_commit(self, _log: Any) -> None:
        # Runs on whichever thread committed; hop onto the loop.
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._broadcast_commit)

    def _broadcast_commit(self) -> None:
        self._counters["commits_broadcast"] += 1
        self._wake_pollers()

    def _wake_pollers(self) -> None:
        if self._commit_event is not None:
            event, self._commit_event = self._commit_event, asyncio.Event()
            event.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(response_bytes(
                        exc.status,
                        error_payload(exc.code, exc.message, **exc.extra),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self._handle_request(request)
                keep_alive = request.keep_alive and not (
                    self._closing is not None and self._closing.is_set()
                )
                writer.write(response_bytes(status, payload,
                                            keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_request(self, request: Request) -> Tuple[int, Dict]:
        rid = f"r{next(self._ids):08d}"
        name = f"{request.method} {request.target}"
        tracer = Tracer() if self.trace_file else None
        started = time.perf_counter()
        self._counters["requests_total"] += 1
        self._counters["in_flight"] += 1
        status = 500
        try:
            endpoint = self._route(request)
            if tracer is not None:
                with tracer.span("serve-request", request_id=rid,
                                 endpoint=name):
                    payload = await endpoint(request, rid, tracer)
            else:
                payload = await endpoint(request, rid, None)
            payload.setdefault("schema_version", SCHEMA_VERSION)
            payload.setdefault("request_id", rid)
            status = 200
            return 200, payload
        except HttpError as exc:
            status = exc.status
            return exc.status, error_payload(exc.code, exc.message,
                                             request_id=rid, **exc.extra)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — daemon must not die
            status = 500
            return 500, error_payload(
                "internal", f"{type(exc).__name__}: {exc}", request_id=rid
            )
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self._counters["in_flight"] -= 1
            if status >= 400:
                self._counters["errors_total"] += 1
            per = self._counters["endpoints"].setdefault(
                name, {"count": 0, "errors": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            per["count"] += 1
            if status >= 400:
                per["errors"] += 1
            per["total_ms"] += elapsed_ms
            per["max_ms"] = max(per["max_ms"], elapsed_ms)
            if tracer is not None:
                tracer.event("serve-response", request_id=rid, status=status,
                             elapsed_ms=round(elapsed_ms, 3))
                with contextlib.suppress(OSError):
                    tracer.write_jsonl(self.trace_file)

    def _route(self, request: Request) -> Callable:
        handler = self._routes.get((request.method, request.target))
        if handler is not None:
            return handler
        if request.target.startswith("/v1/views/") \
                and request.target.endswith("/changes"):
            if request.method != "GET":
                raise HttpError(405, "method-not-allowed",
                                f"{request.method} not allowed here")
            return self._ep_view_changes
        known_paths = {path for _, path in self._routes}
        if request.target in known_paths:
            raise HttpError(405, "method-not-allowed",
                            f"{request.method} {request.target} not allowed")
        raise HttpError(404, "not-found", f"no such endpoint {request.target}")

    # ------------------------------------------------------------------
    # engine plumbing
    # ------------------------------------------------------------------

    def _engine_for(self, text: str) -> CertaintyEngine:
        """The cached per-query engine (parse + classification reused)."""
        engine = self._engines.pop(text, None)
        if engine is None:
            try:
                engine = CertaintyEngine(parse_query(text))
            except (ParseError, QueryError) as exc:
                raise HttpError(400, "parse-error", str(exc))
        self._engines[text] = engine  # re-insert = move to MRU end
        while len(self._engines) > _ENGINE_CACHE_LIMIT:
            self._engines.pop(next(iter(self._engines)))
        return engine

    def _apply_default_jobs(self, opts: ExecutionOptions) -> ExecutionOptions:
        if opts.method == "parallel" and opts.jobs is None \
                and self.jobs is not None:
            return opts.replace(jobs=self.jobs)
        return opts

    async def _run_read(self, fn: Callable[[], Any]) -> Any:
        """Run one engine call in the pool, under admission control."""
        assert self._admission is not None and self._loop is not None
        async with self._admission:
            return await self._loop.run_in_executor(self._executor, fn)

    async def _run_write(self, fn: Callable[[], Any]) -> Any:
        assert self._loop is not None
        return await self._loop.run_in_executor(self._executor, fn)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    async def _ep_certain(self, request: Request, rid: str,
                          tracer: Optional[Tracer]) -> Dict[str, Any]:
        body = _expect(json_body(request), ("query", "options"), ("query",))
        text = _string_field(body, "query")
        opts = self._apply_default_jobs(_options_field(body))
        engine = self._engine_for(text)
        t0 = time.perf_counter()
        async with self._rw.read_locked():
            clock = self.db.clock
            try:
                answer = await self._run_read(
                    lambda: engine.certain(self.db, opts, tracer=tracer)
                )
            except NotInFO as exc:
                raise HttpError(422, "not-in-fo", str(exc))
        return {
            "query": text,
            "method": opts.resolved_method,
            "options": opts.to_dict(),
            "clock": clock,
            "certain": bool(answer),
            "elapsed_ms": round((time.perf_counter() - t0) * 1000.0, 3),
        }

    async def _ep_answers(self, request: Request, rid: str,
                          tracer: Optional[Tracer]) -> Dict[str, Any]:
        body = _expect(json_body(request), ("query", "free", "options"),
                       ("query",))
        text = _string_field(body, "query")
        free = _free_field(body)
        opts = self._apply_default_jobs(_options_field(body))
        engine = self._engine_for(text)
        variables = tuple(Variable(n) for n in free)
        t0 = time.perf_counter()
        async with self._rw.read_locked():
            clock = self.db.clock
            try:
                rows = await self._run_read(
                    lambda: engine.certain_answers(self.db, variables, opts,
                                                   tracer=tracer)
                )
            except NotInFO as exc:
                raise HttpError(422, "not-in-fo", str(exc))
            except QueryError as exc:
                raise HttpError(400, "bad-request", str(exc))
        return {
            "query": text,
            "free": list(free),
            "method": opts.resolved_method,
            "options": opts.to_dict(),
            "clock": clock,
            "answers": rows_to_wire(rows),
            "count": len(rows),
            "digest": answers_digest(rows),
            "elapsed_ms": round((time.perf_counter() - t0) * 1000.0, 3),
        }

    async def _ep_facts(self, request: Request, rid: str,
                        tracer: Optional[Tracer]) -> Dict[str, Any]:
        body = _expect(json_body(request), ("schemas", "ops"), ())
        schemas = self._parse_schemas(body.get("schemas", []))
        ops = self._parse_ops(body.get("ops", []))
        t0 = time.perf_counter()
        async with self._rw.write_locked():
            def apply() -> Tuple[int, int, int]:
                span = tracer.span("serve-facts", request_id=rid,
                                   ops=len(ops)) if tracer else \
                    contextlib.nullcontext()
                with span:
                    for schema in schemas:
                        self.db.add_relation(schema)
                    for _sign, relation, row in ops:
                        schema = self.db.schemas.get(relation)
                        if schema is None:
                            raise HttpError(
                                400, "bad-request",
                                f"unknown relation {relation!r}; declare it "
                                "under 'schemas'",
                            )
                        if len(row) != schema.arity:
                            raise HttpError(
                                400, "bad-request",
                                f"{relation} has arity {schema.arity}, got "
                                f"row of length {len(row)}",
                            )
                    inserted = deleted = 0
                    self.db.begin_batch()
                    try:
                        for sign, relation, row in ops:
                            if sign:
                                self.db.add(relation, row)
                                inserted += 1
                            else:
                                self.db.discard(relation, row)
                                deleted += 1
                    finally:
                        self.db.commit()
                    return inserted, deleted, self.db.clock

            inserted, deleted, clock = await self._run_write(apply)
        return {
            "clock": clock,
            "applied": len(ops),
            "inserted": inserted,
            "deleted": deleted,
            "relations": sorted({rel for _, rel, _ in ops}
                                | {s.name for s in schemas}),
            "elapsed_ms": round((time.perf_counter() - t0) * 1000.0, 3),
        }

    async def _ep_register_view(self, request: Request, rid: str,
                                tracer: Optional[Tracer]) -> Dict[str, Any]:
        body = _expect(json_body(request), ("name", "query", "free"),
                       ("name", "query"))
        name = _string_field(body, "name")
        if len(name) > _VIEW_NAME_MAX or "/" in name:
            raise HttpError(400, "bad-request",
                            "view names must be short and slash-free")
        text = _string_field(body, "query")
        free = _free_field(body)
        existing = self._view_specs.get(name)
        if existing is not None:
            if existing != {"query": text, "free": list(free)}:
                raise HttpError(
                    409, "bad-request",
                    f"view {name!r} already registered with a different "
                    "query; unregistering is not supported over the wire",
                )
            view = self._views[name]
            return self._view_summary(name, view, created=False)
        try:
            query = parse_query(text)
        except (ParseError, QueryError) as exc:
            raise HttpError(400, "parse-error", str(exc))
        variables = [Variable(n) for n in free]
        async with self._rw.write_locked():
            def register() -> View:
                return self._manager.register_view(query, variables)
            try:
                view = await self._run_write(register)
            except NotInFO as exc:
                raise HttpError(422, "not-in-fo", str(exc))
            except QueryError as exc:
                raise HttpError(400, "bad-request", str(exc))
            self._views[name] = view
            self._view_specs[name] = {"query": text, "free": list(free)}
            self._persist_named_views()
        return self._view_summary(name, view, created=True)

    async def _ep_list_views(self, request: Request, rid: str,
                             tracer: Optional[Tracer]) -> Dict[str, Any]:
        async with self._rw.read_locked():
            views = [self._view_summary(name, view)
                     for name, view in sorted(self._views.items())]
            clock = self.db.clock
        return {"clock": clock, "views": views}

    async def _ep_view_changes(self, request: Request, rid: str,
                               tracer: Optional[Tracer]) -> Dict[str, Any]:
        name = request.target[len("/v1/views/"):-len("/changes")]
        try:
            since = int(request.query.get("since", "0"))
        except ValueError:
            raise HttpError(400, "bad-request", "'since' must be an integer")
        try:
            wait = min(float(request.query.get("wait", "0")),
                       _MAX_WAIT_SECONDS)
        except ValueError:
            raise HttpError(400, "bad-request", "'wait' must be a number")
        deadline = time.monotonic() + max(0.0, wait)
        while True:
            # Arm before checking: a commit between the check and the
            # await sets the event we already hold, so it cannot be lost.
            event = self._commit_event
            async with self._rw.read_locked():
                view = self._views.get(name)
                if view is None:
                    raise HttpError(404, "not-found", f"no view named {name!r}")
                version = view.version
                if version > since:
                    try:
                        ins, dels = view.changed_since(since)
                    except StaleVersionError as exc:
                        raise HttpError(409, "stale-version", str(exc),
                                        version=version)
                    payload = changes_payload(ins, dels)
                    payload.update({
                        "name": name, "since": since, "version": version,
                        "timed_out": False,
                    })
                    return payload
            remaining = deadline - time.monotonic()
            closing = self._closing is not None and self._closing.is_set()
            if remaining <= 0 or event is None or closing:
                return {
                    "name": name, "since": since, "version": version,
                    "inserted": [], "deleted": [], "timed_out": True,
                }
            self._counters["long_poll_waits"] += 1
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(event.wait(), timeout=remaining)

    async def _ep_metrics(self, request: Request, rid: str,
                          tracer: Optional[Tracer]) -> Dict[str, Any]:
        server = json.loads(json.dumps(self._counters))  # deep copy
        server["uptime_s"] = round(time.monotonic() - self._started_at, 3)
        server["views"] = len(self._views)
        server["engine_cache"] = len(self._engines)
        payload: Dict[str, Any] = {
            "clock": self.db.clock,
            "engine": collect_metrics().to_dict(),
            "server": server,
        }
        status = getattr(self.db, "storage_status", None)
        payload["storage"] = status() if callable(status) else None
        return payload

    async def _ep_healthz(self, request: Request, rid: str,
                          tracer: Optional[Tracer]) -> Dict[str, Any]:
        return {
            "ok": True,
            "clock": self.db.clock,
            "facts": self.db.size(),
            "relations": len(self.db.schemas),
            "views": len(self._views),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    # ------------------------------------------------------------------
    # request-shape helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_schemas(raw: Any) -> List[RelationSchema]:
        if not isinstance(raw, list):
            raise HttpError(400, "bad-request", "'schemas' must be a list")
        out = []
        for i, spec in enumerate(raw):
            if not isinstance(spec, dict):
                raise HttpError(400, "bad-request",
                                f"schemas[{i}] must be an object")
            try:
                name = spec["name"]
                arity = spec["arity"]
                key_size = spec.get("key_size", spec.get("key"))
            except KeyError as exc:
                raise HttpError(400, "bad-request",
                                f"schemas[{i}] is missing {exc.args[0]!r}")
            if key_size is None:
                raise HttpError(400, "bad-request",
                                f"schemas[{i}] is missing 'key_size'")
            if not isinstance(name, str) or not isinstance(arity, int) \
                    or not isinstance(key_size, int) \
                    or isinstance(arity, bool) or isinstance(key_size, bool):
                raise HttpError(400, "bad-request",
                                f"schemas[{i}] fields have wrong types")
            try:
                out.append(RelationSchema(name, arity, key_size))
            except (ValueError, SchemaError) as exc:
                raise HttpError(400, "bad-request", f"schemas[{i}]: {exc}")
        return out

    @staticmethod
    def _parse_ops(raw: Any) -> List[Tuple[bool, str, Tuple]]:
        if not isinstance(raw, list):
            raise HttpError(400, "bad-request", "'ops' must be a list")
        out = []
        for i, spec in enumerate(raw):
            if not isinstance(spec, dict):
                raise HttpError(400, "bad-request", f"ops[{i}] must be an object")
            _expect(spec, ("op", "relation", "row"),
                    ("op", "relation", "row"))
            sign = spec["op"]
            if sign not in ("+", "-", "add", "discard"):
                raise HttpError(400, "bad-request",
                                f"ops[{i}].op must be '+' or '-'")
            relation = spec["relation"]
            if not isinstance(relation, str):
                raise HttpError(400, "bad-request",
                                f"ops[{i}].relation must be a string")
            try:
                row = row_from_wire(spec["row"])
            except TypeError as exc:
                raise HttpError(400, "bad-request", f"ops[{i}].row: {exc}")
            out.append((sign in ("+", "add"), relation, row))
        return out

    def _view_summary(self, name: str, view: View,
                      created: Optional[bool] = None) -> Dict[str, Any]:
        spec = self._view_specs[name]
        out: Dict[str, Any] = {
            "name": name,
            "query": spec["query"],
            "free": list(spec["free"]),
            "version": view.version,
            "count": len(view.answers),
            "digest": answers_digest(view.answers),
        }
        if created is not None:
            out["created"] = created
        return out

    # ------------------------------------------------------------------
    # named-view persistence
    # ------------------------------------------------------------------

    def _serve_views_path(self) -> Optional[pathlib.Path]:
        store_path = getattr(self.db, "path", None)
        if store_path is None:
            return None
        return pathlib.Path(store_path) / SERVE_VIEWS_FILE

    def _persist_named_views(self) -> None:
        path = self._serve_views_path()
        if path is None:
            return
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps({"views": self._view_specs}, indent=2,
                                  sort_keys=True) + "\n")
        os.replace(tmp, path)

    def _load_named_views(self) -> None:
        path = self._serve_views_path()
        if path is None or not path.exists():
            return
        manifest = json.loads(path.read_text())
        for name, spec in sorted(manifest.get("views", {}).items()):
            query = parse_query(spec["query"])
            variables = [Variable(n) for n in spec["free"]]
            self._views[name] = self._manager.register_view(query, variables)
            self._view_specs[name] = {"query": spec["query"],
                                      "free": list(spec["free"])}
