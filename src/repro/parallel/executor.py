"""Parallel sharded certain-answer execution (``method="parallel"``).

Splits the database into block-preserving shards (one hash class of
the shard variable's key values per shard), runs the compiled open
rewriting on every shard in a persistent forked worker pool, and
unions the post-filtered per-shard answers.  Exactness rests on the
partitioning argument in :mod:`repro.parallel.partition`; the parity
suite (``tests/test_method_parity.py``) and the benchmark's
byte-identical assertion (``scripts/bench_parallel.py``) check it
end to end.

Serial fallback — running the plain ``compiled`` path in-process — is
taken whenever sharding cannot help or cannot be trusted:

* ``jobs <= 1``, or the platform cannot ``fork``;
* the database is below ``REPRO_PARALLEL_MIN_FACTS`` (default 2000),
  where fork + IPC overhead dwarfs the work;
* the query is Boolean (certainty does not decompose over shards —
  see the counterexample in ``docs/PERFORMANCE.md``);
* no answer variable sits at a key position of any atom, so there is
  nothing sound to route blocks by;
* the compiled plan touches the active domain (``Adom*`` nodes):
  shards see a smaller domain than the whole database, so such plans
  are not shard-local.

Every fallback is counted (with its reason) in
:func:`parallel_stats`.
"""

from __future__ import annotations

import os
import time
from typing import Dict, FrozenSet, Optional, Tuple

from ..db.database import Database
from ..fo.compile import plan_cache
from ..fo.plan import Plan
from ..obs.config import RunConfig
from ..obs.trace import NULL_TRACER
from .partition import shard_database, shard_spec
from .pool import fork_context, max_workers_cap, run_sharded, worker_pool

__all__ = [
    "parallel_certain_answers",
    "parallel_stats",
    "reset_parallel_stats",
    "plan_has_adom",
]

DEFAULT_MIN_FACTS = 2000
# Shards per worker.  Far more shards than workers, so each shard's
# per-relation indexes stay cache-resident: on the benchmark host the
# sharded execution sum keeps dropping until ~64 shards (see
# docs/PERFORMANCE.md), and idle cost of extra shards is negligible.
DEFAULT_SHARD_FACTOR = 16

_STATS: Dict[str, object] = {}

# Shard layouts keyed by (database identity, clock, spec, n_shards):
# partitioning depends only on the layout, not the worker count, so a
# jobs sweep over one database re-uses the same shard list for every
# pool instead of re-hashing millions of rows per worker count.
_SHARDS_CACHE_LIMIT = 4
_shards_cache: Dict[Tuple, list] = {}


def release_layouts(db: Optional[Database] = None) -> int:
    """Drop cached shard layouts — ``db``'s only, or all of them.

    The layout cache holds strong references to full shard copies of
    the database; a long-running server releases them together with
    the worker pools (see :func:`repro.parallel.release_database`).
    Returns the number of layouts dropped.
    """
    if db is None:
        n = len(_shards_cache)
        _shards_cache.clear()
        return n
    keys = [k for k in _shards_cache if k[0] == id(db)]
    for key in keys:
        del _shards_cache[key]
    return len(keys)


def reset_parallel_stats() -> None:
    _STATS.clear()
    _STATS.update(
        runs=0,
        parallel_runs=0,
        columnar_runs=0,
        serial_fallbacks=0,
        fallback_reasons={},
        shards=0,
        workers=0,
        tasks=0,
        partition_ms=0.0,
        merge_ms=0.0,
        worker_exec_ms=0.0,
        worker_rows=0,
        worker_plan_cache={"hits": 0, "misses": 0, "evictions": 0},
    )


reset_parallel_stats()


def parallel_stats() -> Dict[str, object]:
    """Aggregated parallel-execution counters.

    Shard and worker counts of the most recent parallel run,
    cumulative partition/merge wall time, and serial fallbacks keyed
    by reason.  Work done inside forked workers is accounted under
    ``worker_rows`` / ``worker_plan_cache``: each pool call ships the
    worker-side counter *deltas* back with its result, and the parent
    accumulates them here.  They stay separate from the parent's own
    plan-cache counters because the caches are distinct objects after
    fork (see the fork-safety note on ``repro.fo.compile.PlanCache``).
    This feeds the ``parallel`` section of ``EngineMetrics``.
    """
    out = dict(_STATS)
    out["fallback_reasons"] = dict(_STATS["fallback_reasons"])  # type: ignore[arg-type]
    out["worker_plan_cache"] = dict(_STATS["worker_plan_cache"])  # type: ignore[arg-type]
    return out


def plan_has_adom(plan: Plan) -> bool:
    """Does the plan contain any active-domain node?

    Delegates to the generic ``children()``-based walk of the analysis
    package, so new operator types are covered automatically (the old
    per-type recursion here silently missed unknown nodes).
    """
    from ..analysis.verifier import plan_uses_adom

    return plan_uses_adom(plan)


def resolve_jobs(jobs: Optional[int],
                 config: Optional[RunConfig] = None) -> int:
    """The effective worker count: explicit ``jobs``, then the config's
    ``jobs``, then the CPU count — clamped by the config's
    ``max_workers`` (falling back to the ``REPRO_MAX_WORKERS`` env
    cap when no config carries one)."""
    if config is not None:
        if config.max_workers is not None:
            return config.resolved_jobs(jobs)
        n = config.resolved_jobs(jobs)
    else:
        n = jobs if jobs is not None else (os.cpu_count() or 1)
    cap = max_workers_cap()
    if cap is not None:
        n = min(n, cap)
    return max(1, n)


def _min_facts(min_facts: Optional[int],
               config: Optional[RunConfig] = None) -> int:
    if min_facts is not None:
        return min_facts
    if config is not None and config.parallel_min_facts is not None:
        return config.parallel_min_facts
    raw = os.environ.get("REPRO_PARALLEL_MIN_FACTS", "").strip()
    if raw.isdigit():
        return int(raw)
    return DEFAULT_MIN_FACTS


def _fallback(open_query, db: Database, reason: str,
              tracer=NULL_TRACER, backend: str = "tuple") -> FrozenSet[Tuple]:
    from ..cqa.certain_answers import certain_answers

    _STATS["serial_fallbacks"] += 1  # type: ignore[operator]
    reasons: Dict[str, int] = _STATS["fallback_reasons"]  # type: ignore[assignment]
    reasons[reason] = reasons.get(reason, 0) + 1
    tracer.event("parallel-fallback", reason=reason)
    method = "columnar" if backend == "columnar" else "compiled"
    return certain_answers(open_query, db, method,
                           tracer=tracer if tracer.enabled else None)


def parallel_certain_answers(
    open_query,
    db: Database,
    jobs: Optional[int] = None,
    min_facts: Optional[int] = None,
    shard_factor: Optional[int] = None,
    config: Optional[RunConfig] = None,
    tracer=None,
    backend: Optional[str] = None,
) -> FrozenSet[Tuple]:
    """All certain answers of q(x⃗) on db, computed shard-parallel.

    Returns exactly ``certain_answers(open_query, db, "compiled")`` —
    the point is wall-clock, not semantics.  ``jobs=None`` uses the
    CPU count; see the module docstring for the serial-fallback
    conditions.  ``shard_factor`` controls over-partitioning: with
    ``jobs * shard_factor`` shards in the work queue, workers that
    finish early pick up remaining chunks, and smaller shards keep
    per-shard hash tables cache-resident.

    ``config`` (a :class:`repro.obs.RunConfig`) supplies fallback
    defaults for ``jobs``/``min_facts``/``shard_factor`` and the
    worker cap; explicit arguments win.  ``tracer`` records partition/
    merge spans, one span per worker group (shards owned, rows
    produced, in-shard execution time), and fallback events.

    ``backend`` selects the per-shard executor: ``"tuple"`` (default;
    also via ``REPRO_PARALLEL_BACKEND``) runs the row executor,
    ``"columnar"`` the vectorized one — the parent then primes every
    shard's columnar store with its own shared value dictionary
    *before* forking, so workers ship compact int columns instead of
    pickled tuple sets (see :mod:`repro.parallel.pool`).  Serial
    fallbacks preserve the backend choice.
    """
    from ..cqa.certain_answers import _guarded_open_rewriting

    t = tracer if tracer is not None else NULL_TRACER
    if backend is None:
        raw = os.environ.get("REPRO_PARALLEL_BACKEND", "").strip().lower()
        backend = raw if raw in ("tuple", "columnar") else "tuple"
    if shard_factor is None:
        shard_factor = (config.shard_factor if config is not None
                        and config.shard_factor is not None
                        else DEFAULT_SHARD_FACTOR)
    _STATS["runs"] += 1  # type: ignore[operator]
    n_jobs = resolve_jobs(jobs, config)
    if not open_query.free:
        return _fallback(open_query, db, "boolean", t, backend)
    if n_jobs <= 1:
        return _fallback(open_query, db, "jobs=1", t, backend)
    if db.size() < _min_facts(min_facts, config):
        return _fallback(open_query, db, "below-min-facts", t, backend)
    if fork_context() is None:
        return _fallback(open_query, db, "no-fork", t, backend)
    spec = shard_spec(open_query, db)
    if spec is None:
        return _fallback(open_query, db, "no-shard-variable", t, backend)
    formula = _guarded_open_rewriting(open_query)
    compiled = plan_cache.get_or_compile(formula, db, open_query.free)
    if plan_has_adom(compiled.plan):
        return _fallback(open_query, db, "plan-touches-adom", t, backend)

    n_shards = max(2, n_jobs * max(1, shard_factor))
    filter_pos = compiled.free.index(spec.var)
    # A fully sharded layout (no broadcast relations) only ever scans
    # rows whose routing value belongs to the executing shard, so its
    # answers are shard-local by construction; the post-filter is only
    # needed when broadcast relations can generate foreign candidates.
    do_filter = bool(spec.broadcast)

    t0 = time.perf_counter()
    partitioned: Dict[str, bool] = {"fresh": False}
    layout_key = (id(db), db.clock, spec, n_shards)

    def factory():
        shards = _shards_cache.get(layout_key)
        if shards is None:
            stale = [k for k in _shards_cache
                     if k[0] == id(db) and k[1] != db.clock]
            while stale or len(_shards_cache) >= _SHARDS_CACHE_LIMIT:
                victim = stale.pop() if stale else next(iter(_shards_cache))
                del _shards_cache[victim]
            partitioned["fresh"] = True
            shards = shard_database(db, spec, n_shards)
            _shards_cache[layout_key] = shards
        if backend == "columnar":
            # Prime every shard's store with the PARENT's dictionary
            # before the fork (the factory runs inside ``worker_pool``,
            # pre-fork on every pool miss): workers then inherit codes
            # for every fact and plan value and never need to assign
            # their own on the hot path.
            from ..columnar import columnar_store, prime_plan_values

            parent_store = columnar_store(db)
            parent_store.prime(db)
            prime_plan_values(parent_store, compiled.plan,
                              compiled.constants)
            for shard in shards:
                columnar_store(shard, parent_store.dictionary).prime(shard)
        return shards

    # The backend is part of the pool identity: columnar pools must be
    # forked after their shards were primed, so a warm tuple pool can
    # never serve columnar tasks (and vice versa).
    cache_key = (db.clock, n_jobs, n_shards, spec, backend)
    got = worker_pool(db, cache_key, n_jobs, n_shards, factory)
    if got is None:
        return _fallback(open_query, db, "no-fork", t)
    shards, pools = got
    partition_seconds = time.perf_counter() - t0
    if partitioned["fresh"]:
        _STATS["partition_ms"] += partition_seconds * 1e3  # type: ignore[operator]
        t.record("partition", partition_seconds, shards=n_shards)

    dictionary = None
    if backend == "columnar":
        from ..columnar import columnar_store

        dictionary = columnar_store(db).dictionary
    merged, merge_seconds, exec_seconds, worker_infos = run_sharded(
        pools, compiled.plan, compiled.constants, filter_pos, do_filter,
        backend=backend, dictionary=dictionary,
    )
    _STATS["merge_ms"] += merge_seconds * 1e3  # type: ignore[operator]
    _STATS["worker_exec_ms"] += exec_seconds * 1e3  # type: ignore[operator]
    _STATS["parallel_runs"] += 1  # type: ignore[operator]
    if backend == "columnar":
        _STATS["columnar_runs"] += 1  # type: ignore[operator]
    _STATS["shards"] = n_shards
    _STATS["workers"] = n_jobs
    _STATS["tasks"] += n_jobs  # type: ignore[operator]
    cache_totals: Dict[str, int] = _STATS["worker_plan_cache"]  # type: ignore[assignment]
    for info in worker_infos:
        _STATS["worker_rows"] += int(info.get("rows", 0))  # type: ignore[operator]
        delta = info.get("plan_cache") or {}
        for key in cache_totals:
            cache_totals[key] += int(delta.get(key, 0))  # type: ignore[arg-type, call-overload]
        if t.enabled:
            t.record(
                "worker",
                float(info["exec_seconds"]),  # type: ignore[arg-type]
                worker=info["worker"],
                shards=info.get("shards", 0),
                rows=info.get("rows", 0),
            )
    t.record("merge", merge_seconds, rows=len(merged))
    return frozenset(merged)
