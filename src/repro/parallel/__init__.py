"""Parallel sharded certain-answer execution.

The acyclic case of the paper puts CERTAINTY(q) in FO, so certain
answers decompose into independent per-candidate checks — and, block
by block, into independent shards of the database.  This package
partitions a :class:`~repro.db.database.Database` without ever
splitting a key-equal block (:mod:`~repro.parallel.partition`),
executes the compiled open rewriting on each shard in a persistent
forked worker pool (:mod:`~repro.parallel.pool`), and merges the
disjoint per-shard answers (:mod:`~repro.parallel.executor`).

Entry points: :func:`parallel_certain_answers` (or
``method="parallel"`` on ``certain_answers`` /
``CertaintyEngine.certain_answers`` / the ``repro answers --jobs N``
CLI), :func:`parallel_stats`, and :func:`shutdown_pools`.
"""

from .executor import (
    parallel_certain_answers,
    parallel_stats,
    plan_has_adom,
    release_layouts,
    reset_parallel_stats,
)
from .partition import ShardSpec, shard_database, shard_of, shard_spec
from .pool import PoolRegistry, admission_slots, pool_registry, shutdown_pools

__all__ = [
    "parallel_certain_answers",
    "parallel_stats",
    "plan_has_adom",
    "release_database",
    "release_layouts",
    "reset_parallel_stats",
    "PoolRegistry",
    "ShardSpec",
    "admission_slots",
    "pool_registry",
    "shard_database",
    "shard_of",
    "shard_spec",
    "shutdown_pools",
]


def release_database(db=None) -> int:
    """Free every parallel-layer resource held for ``db`` (or all).

    Tears down the warm forked worker pools *and* drops the cached
    shard layouts, so a long-running process (``repro serve``, ``repro
    watch``) can retire a database without leaking worker processes or
    shard copies.  Called automatically by
    ``PersistentDatabase.close()``.  Returns the number of pool entries
    plus layouts released.
    """
    return pool_registry.release(db) + release_layouts(db)
