"""Block-aware horizontal partitioning of databases.

CERTAINTY(q) for a grounded sjfBCQ¬ query factors over key-equal
blocks: a repair chooses one fact per block, and the choices in
distinct blocks are independent.  Once an answer variable ``v`` is
bound to a candidate value, an atom whose key carries ``v`` at
position ``i`` can only be satisfied or violated by facts whose key
holds that value at position ``i`` — every other block of the relation
is irrelevant to the grounded query, whichever fact the repair picks
from it.  Hashing rows of such a relation on that key position
therefore (a) never splits a block (key-equal facts agree on every key
position) and (b) routes every block that can interact with a
candidate answer to the candidate's own shard.  Relations whose atom
does not carry the shard variable in its key cannot be filtered this
way and are *broadcast* — copied whole into every shard.

The upshot: for answers ``a`` with ``shard_of(a[v], n) == s``, the
certain answers of the grounded query on shard ``s`` equal those on
the full database.  Shards post-filter their answer rows on exactly
that predicate (see :mod:`repro.parallel.pool`), which also discards
stray candidates that a broadcast relation may generate for foreign
shards.  Boolean queries do **not** decompose this way — with no
answer variable there is nothing to route blocks by, and certainty on
every shard neither implies nor is implied by certainty on the whole
database — so the boolean path stays serial (see
``docs/PERFORMANCE.md`` for a two-shard counterexample).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.terms import Variable
from ..db.database import Database

__all__ = ["ShardSpec", "shard_of", "shard_spec", "shard_database"]


def shard_of(value: object, n_shards: int) -> int:
    """Deterministic, process-independent shard of a domain value.

    Built on CRC-32 of ``repr(value)`` rather than ``hash()``: string
    hashing is salted per process (PYTHONHASHSEED), and shard routing
    must agree between the parent that partitions and the forked
    workers that post-filter.
    """
    return zlib.crc32(repr(value).encode("utf-8")) % n_shards


@dataclass(frozen=True)
class ShardSpec:
    """How to split a database for one open query.

    ``var`` is the shard variable (an answer variable), ``key_pos``
    maps each shardable relation to the key position carrying ``var``
    in its atom, and ``broadcast`` lists the query relations copied
    whole into every shard.
    """

    var: Variable
    key_pos: Tuple[Tuple[str, int], ...] = field(default=())
    broadcast: FrozenSet[str] = field(default_factory=frozenset)

    @property
    def sharded(self) -> Dict[str, int]:
        return dict(self.key_pos)


def _spec_for(var: Variable, atoms) -> ShardSpec:
    key_pos: List[Tuple[str, int]] = []
    broadcast: List[str] = []
    for atom in atoms:
        pos = next(
            (i for i, t in enumerate(atom.key_terms) if t == var), None
        )
        if pos is None:
            broadcast.append(atom.relation)
        else:
            key_pos.append((atom.relation, pos))
    return ShardSpec(var, tuple(sorted(key_pos)), frozenset(broadcast))


def shard_spec(open_query, db: Optional[Database] = None) -> Optional[ShardSpec]:
    """Choose a shard variable and partitioning layout, or ``None``.

    Candidates are answer variables occurring at a key position of at
    least one atom (self-join-freeness gives each relation one atom,
    hence one well-defined routing position).  When a database is
    supplied, the variable routing the most facts wins — broadcast
    relations are replicated ``n`` times, so maximizing the sharded
    fact mass minimizes total shard volume; ties (and the db-less
    case) break deterministically by variable name.
    """
    atoms = tuple(open_query.query.atoms)
    best: Optional[ShardSpec] = None
    best_score: Tuple[int, ...] = ()
    for var in sorted(open_query.free, key=lambda v: v.name, reverse=True):
        spec = _spec_for(var, atoms)
        if not spec.key_pos:
            continue
        if db is not None:
            mass = sum(
                len(db.facts(rel)) for rel, _ in spec.key_pos
                if rel in db.schemas
            )
        else:
            mass = len(spec.key_pos)
        score = (mass, len(spec.key_pos))
        if best is None or score >= best_score:
            best, best_score = spec, score
    return best


def shard_database(db: Database, spec: ShardSpec,
                   n_shards: int) -> List[Database]:
    """Split ``db`` into ``n_shards`` databases under ``spec``.

    Sharded relations distribute rows by ``shard_of`` on their routing
    key position; broadcast relations are copied whole.  Relations of
    the database that the query never mentions are dropped — compiled
    plans only scan query relations, and the parallel path refuses
    plans that touch the active domain (see
    ``repro.parallel.executor``), so the omission is invisible.
    """
    shards = [Database(db.schemas.values()) for _ in range(n_shards)]
    for rel in sorted(spec.broadcast):
        if rel not in db.schemas:
            continue
        rows = db.facts(rel)
        for shard in shards:
            shard.add_all(rel, rows)
    for rel, pos in spec.key_pos:
        if rel not in db.schemas:
            continue
        buckets: List[List[Tuple]] = [[] for _ in range(n_shards)]
        for row in db.facts(rel):
            buckets[shard_of(row[pos], n_shards)].append(row)
        for shard, bucket in zip(shards, buckets):
            shard.add_all(rel, bucket)
    return shards
