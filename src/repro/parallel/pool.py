"""Persistent fork-based worker pools for sharded plan execution.

Workers are forked *after* the parent has partitioned the database, so
every worker inherits the shard list copy-on-write — no shard is ever
pickled.  Only the per-call payload (a compiled plan of ~1 KB plus the
post-filter position) crosses the pipe on the way in, and only answer
rows cross it on the way out.

Two lifecycle decisions matter for steady-state latency:

* **Shard affinity.**  A shared work queue would hand shard *i* to a
  different worker on every call, and the column indexes that
  ``Database`` caches per relation would stay forever cold (each
  worker warms only its own copy-on-write copy).  The pool is
  therefore a *pool of pinned pools*: ``jobs`` single-worker
  ``ProcessPoolExecutor``s, each owning the fixed shard group
  ``shards[w::jobs]``.  A worker executes the same shards on every
  call, so its indexes warm once and stay warm.
* **``gc.freeze()`` after fork.**  Each worker's heap starts as a
  copy-on-write snapshot of the parent — including the parent's full
  database and every other shard.  Freezing moves those inherited
  objects into the permanent generation, so worker collections
  neither traverse the (immutable) snapshot nor dirty its pages with
  refcount writes.

Pools are cached per (database identity, changelog clock, shard
layout): repeated certain-answer calls against an unchanged database
reuse the warm pool, while any mutation bumps ``Database.clock`` and
transparently retires the stale pool.  ``REPRO_MAX_WORKERS`` caps the
worker count (CI sets it to keep smoke jobs tame), and
:func:`shutdown_pools` — also registered ``atexit`` — tears everything
down.

Fork safety of process-wide caches: each worker inherits a snapshot of
the parent's ``repro.fo.compile.plan_cache`` (and every other module
global) at fork time.  Worker-side hits and misses accumulate in the
*worker's* copy and never appear in the parent's own plan-cache
counters; instead each pool call ships the worker-side counter
*deltas* back with its result, and the executor folds them into
``worker_plan_cache`` under ``repro.parallel.parallel_stats()`` (the
``parallel`` section of ``engine.metrics()``).
"""

from __future__ import annotations

import atexit
import gc
import marshal
import multiprocessing
import os
import pickle
import time
from array import array
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..db.database import Database
from ..fo.plan import Executor, Plan
from .partition import shard_of

__all__ = ["max_workers_cap", "fork_context", "worker_pool", "run_sharded",
           "shutdown_pools", "admission_slots", "PoolRegistry",
           "pool_registry"]

_POOL_CACHE_LIMIT = 4


def admission_slots(jobs: int) -> int:
    """Concurrent execution slots for ``jobs`` workers: at most one
    in-flight plan execution per physical core.

    This is the parallel layer's admission-control rule; ``repro
    serve`` reuses it to size its own request semaphore so a saturated
    daemon queues requests instead of oversubscribing cores.
    """
    return max(1, min(jobs, os.cpu_count() or 1))


def max_workers_cap() -> Optional[int]:
    """The ``REPRO_MAX_WORKERS`` env cap, if set and positive."""
    raw = os.environ.get("REPRO_MAX_WORKERS", "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return None


def fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` start method, or ``None`` where unsupported.

    The pool relies on copy-on-write shard inheritance; platforms
    without ``fork`` (Windows) fall back to serial execution upstream.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

# One pinned shard group per worker process: [(shard_index, shard_db)].
_group_shards: List[Tuple[int, Database]] = []
_group_n_shards: int = 0
_group_admission = None

# Columnar fork-safety horizon: the length of the shared value
# dictionary at fork time.  The dictionary is append-only, so parent
# and worker agree on the meaning of every code below this length
# forever; a worker result containing any code at or above it (a value
# first seen post-fork) must ship decoded values instead of raw codes.
# ``None`` when the shards carry no primed columnar store.
_group_safe_codes: Optional[int] = None

# Plan-cache counters already reported to the parent: each call ships
# only the delta since the previous report, so the parent can fold the
# increments into its metrics without double counting across calls.
_reported_cache_stats: Dict[str, int] = {}


def _cache_stats_delta() -> Dict[str, int]:
    """Worker-side plan-cache counter increments since the last report.

    Forked workers inherit (and then mutate) their own copy of the
    process-wide plan cache; these deltas are how that activity becomes
    visible in the parent's ``EngineMetrics`` instead of silently
    vanishing with the worker.
    """
    from ..fo.compile import plan_cache

    now = plan_cache.stats()
    delta = {
        key: now[key] - _reported_cache_stats.get(key, 0)
        for key in ("hits", "misses", "evictions")
    }
    _reported_cache_stats.update(
        {key: now[key] for key in ("hits", "misses", "evictions")}
    )
    return delta


def _init_group(shards: List[Database], indices: Sequence[int],
                n_shards: int, admission) -> None:
    # Under fork these arguments re-bind inherited objects; nothing is
    # serialized.  Freezing the inherited heap keeps worker GC cycles
    # from traversing the parent snapshot (or dirtying its COW pages).
    global _group_shards, _group_n_shards, _group_admission, _group_safe_codes
    _group_shards = [(i, shards[i]) for i in indices]
    _group_n_shards = n_shards
    _group_admission = admission
    # The initializer runs in the freshly forked child before any task,
    # so the inherited dictionary length IS the fork-time length.
    _group_safe_codes = None
    for _, shard_db in _group_shards:
        store = getattr(shard_db, "_columnar_store", None)
        if store is not None:
            _group_safe_codes = len(store.dictionary)
        break
    gc.freeze()


def _run_group(task: Tuple) -> Tuple[bytes, float, Dict[str, object]]:
    """Execute one compiled plan on every shard this worker owns.

    Each per-shard execution holds one slot of the admission semaphore
    (``min(jobs, cpu_count)`` slots), so at most one execution runs per
    physical core.  Oversubscribed workers — ``jobs`` beyond the core
    count — would otherwise time-slice against each other and evict
    each other's shard working sets from the shared cache, destroying
    the very locality that sharding buys; with admission control they
    simply take turns, and the slot is released between shards so cores
    rotate fairly.  Result pickling happens outside the slot.

    When the layout has broadcast relations, rows are post-filtered to
    the shard's own hash class — discarding candidates that broadcast
    relations generated on behalf of other shards — so shard results
    are pairwise disjoint and merge by plain union.  Fully sharded
    layouts need no filter: every scanned row already carries a
    shard-local value at the routing position.

    ``backend="columnar"`` runs the vectorized executor instead and
    ships compact int columns (``("C", n, width, column bytes)``) when
    every emitted code predates the fork (see ``_group_safe_codes``),
    falling back to decoded value rows (``("V", rows)``) otherwise.
    """
    plan, constants, filter_pos, do_filter, backend = task
    out: List[object] = []
    total_rows = 0
    exec_seconds = 0.0
    for index, shard_db in _group_shards:
        if backend == "columnar":
            from ..columnar import VectorExecutor, columnar_store

            store = columnar_store(shard_db)
            with _group_admission:
                t0 = time.perf_counter()
                batch = VectorExecutor(shard_db, constants,
                                       store=store).run(plan)
                exec_seconds += time.perf_counter() - t0
            if do_filter and batch.length:
                values = store.dictionary.values
                col = batch.column(filter_pos)
                sel = [
                    i for i, code in enumerate(col)
                    if shard_of(values[code], _group_n_shards) == index
                ]
                if len(sel) != batch.length:
                    batch = batch.select(sel)
            total_rows += batch.length
            out.append(_encode_columnar_shard(batch, store.dictionary))
        else:
            with _group_admission:
                t0 = time.perf_counter()
                rows = Executor(shard_db, None, constants).run(plan)
                exec_seconds += time.perf_counter() - t0
            if do_filter:
                kept = [
                    row for row in rows
                    if shard_of(row[filter_pos], _group_n_shards) == index
                ]
            else:
                kept = list(rows)
            total_rows += len(kept)
            out.append(kept)
    counters: Dict[str, object] = {
        "shards": len(_group_shards),
        "rows": total_rows,
        "plan_cache": _cache_stats_delta(),
    }
    return _encode_rows(out), exec_seconds, counters


def _encode_columnar_shard(batch, dictionary) -> Tuple:
    """One shard's columnar answers, as the cheapest safe wire form.

    Raw code columns (near-memcpy on both ends) whenever every code was
    assigned before the fork — the append-only dictionary guarantees
    the parent reads them back as the same values.  Any younger code
    means the worker saw a value the parent may have coded differently
    (or never), so the rows are decoded worker-side and marshaled as
    values instead.
    """
    safe = _group_safe_codes
    if batch.length == 0:
        return ("C", 0, batch.width, [b""] * batch.width)
    if safe is not None and all(
        max(col) < safe for col in batch.columns
    ):
        return ("C", batch.length, batch.width,
                [col.tobytes() for col in batch.columns])
    return ("V", list(batch.to_rows(dictionary)))


def _decode_columnar_shard(entry: Tuple, dictionary) -> List[Tuple]:
    if entry[0] == "V":
        return entry[1]
    _, n, width, blobs = entry
    if n == 0:
        return []
    if width == 0:
        return [()]
    values = dictionary.values
    columns = []
    for blob in blobs:
        col = array("q")
        col.frombytes(blob)
        columns.append(col)
    decoded = [map(values.__getitem__, col) for col in columns]
    return list(zip(*decoded))


def _encode_rows(groups: List[List[Tuple]]) -> bytes:
    """Serialize answer rows for the trip back to the parent.

    ``marshal`` handles tuples of primitive values (the overwhelmingly
    common shape of database rows) several times faster than pickle,
    and the result crosses the process boundary as a single ``bytes``
    payload — which the executor machinery pickles as a near-memcpy.
    Exotic value types fall back to pickle transparently.
    """
    try:
        return b"M" + marshal.dumps(groups)
    except ValueError:
        return b"P" + pickle.dumps(groups)


def _decode_rows(blob: bytes) -> List[List[Tuple]]:
    if blob[:1] == b"M":
        return marshal.loads(blob[1:])
    return pickle.loads(blob[1:])


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class PoolRegistry:
    """Explicit lifecycle owner of the warm forked worker pools.

    The cache used to be a bare module dict torn down only via
    ``atexit`` — fine for one-shot CLI calls, a leak for a resident
    ``repro serve`` daemon whose store is checkpointed, reopened, or
    swapped while the process lives on.  The registry keeps the same
    keying — ``(database identity, changelog clock, shard layout)`` —
    and adds explicit teardown: :meth:`release` for one database's
    pools (called from ``PersistentDatabase.close()``, server
    shutdown, and ``repro watch`` on Ctrl-C), :meth:`shutdown` for
    everything, and context-manager form for scoped use.  The default
    process-wide instance is :data:`pool_registry`; ``atexit`` still
    runs :meth:`shutdown` as the last-resort backstop.
    """

    def __init__(self, limit: int = _POOL_CACHE_LIMIT):
        self._limit = limit
        # key -> (db strong ref, shards, pinned single-worker
        # executors); the strong reference keeps the id()-based key
        # honest for the entry's lifetime.
        self._pools: Dict[
            Tuple, Tuple[Database, List[Database], List[ProcessPoolExecutor]]
        ] = {}

    def __len__(self) -> int:
        return len(self._pools)

    def __enter__(self) -> "PoolRegistry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    @staticmethod
    def _teardown(entry) -> None:
        for pool in entry[2]:
            pool.shutdown(wait=False, cancel_futures=True)

    def lease(
        self,
        db: Database,
        cache_key: Tuple,
        jobs: int,
        n_shards: int,
        shards_factory,
    ) -> Optional[Tuple[List[Database], List[ProcessPoolExecutor]]]:
        """A warm (shards, pinned executors) pair, forked on first use.

        ``cache_key`` must determine the shard layout (it includes the
        database's clock, the shard spec, and the worker count);
        ``shards_factory`` is invoked only on a cache miss, *before*
        the fork, so workers inherit the fresh shards copy-on-write.
        Worker ``w`` permanently owns ``shards[w::jobs]``.  Returns
        ``None`` when the platform cannot fork.
        """
        key = (id(db),) + cache_key
        entry = self._pools.get(key)
        if entry is not None:
            return entry[1], entry[2]
        ctx = fork_context()
        if ctx is None:
            return None
        # Retire stale pools for the same database object (old clock
        # only — same-clock siblings such as another jobs value over
        # the same database stay warm) and enforce the small bound.
        stale = [k for k in self._pools
                 if k[0] == id(db) and k[1] != db.clock]
        while stale or len(self._pools) >= self._limit:
            victim = stale.pop() if stale else next(iter(self._pools))
            self._teardown(self._pools.pop(victim))
        shards = shards_factory()
        # Admission control: at most one in-flight plan execution per
        # physical core, however many workers the caller asked for.
        admission = ctx.Semaphore(admission_slots(jobs))
        pools = [
            ProcessPoolExecutor(
                max_workers=1,
                mp_context=ctx,
                initializer=_init_group,
                initargs=(shards, range(w, n_shards, jobs), n_shards,
                          admission),
            )
            for w in range(jobs)
        ]
        self._pools[key] = (db, shards, pools)
        return shards, pools

    def release(self, db: Optional[Database] = None) -> int:
        """Shut down cached pools — ``db``'s only, or all of them.

        Returns the number of pool entries torn down.  Safe to call
        repeatedly; releasing a database with no warm pools is a no-op.
        """
        if db is None:
            keys = list(self._pools)
        else:
            keys = [k for k in self._pools if k[0] == id(db)]
        for key in keys:
            self._teardown(self._pools.pop(key))
        return len(keys)

    def shutdown(self) -> int:
        """Tear down every cached pool (the ``atexit`` backstop)."""
        return self.release(None)


#: The process-wide registry every engine call leases pools from.
pool_registry = PoolRegistry()


def worker_pool(
    db: Database,
    cache_key: Tuple,
    jobs: int,
    n_shards: int,
    shards_factory,
) -> Optional[Tuple[List[Database], List[ProcessPoolExecutor]]]:
    """Lease from the process-wide :data:`pool_registry` (see
    :meth:`PoolRegistry.lease`)."""
    return pool_registry.lease(db, cache_key, jobs, n_shards, shards_factory)


def run_sharded(
    pools: List[ProcessPoolExecutor],
    plan: Plan,
    constants: Sequence,
    filter_pos: int,
    do_filter: bool,
    backend: str = "tuple",
    dictionary=None,
) -> Tuple[Set[Tuple], float, float, List[Dict[str, object]]]:
    """Fan one plan out to every pinned worker and union the answers.

    All groups are submitted before any result is awaited, so workers
    run concurrently; results merge in worker order (and shard order
    within a worker), which makes the merge deterministic — though the
    shard answer sets are disjoint, so the union is order-insensitive
    anyway.

    ``backend="columnar"`` makes workers run the vectorized executor
    and ship int columns; ``dictionary`` (the parent database's shared
    value dictionary) is then required to decode them.

    Returns ``(merged, merge_seconds, exec_seconds, worker_infos)``;
    each worker info carries the worker index, its cumulative in-shard
    execution time, its answer-row and shard counts, and the worker's
    plan-cache counter delta — the raw material for per-shard spans
    and for merging worker-side counters into the parent's metrics.
    """
    task = (plan, tuple(constants), filter_pos, do_filter, backend)
    futures = [pool.submit(_run_group, task) for pool in pools]
    merged: Set[Tuple] = set()
    merge_seconds = 0.0
    exec_seconds = 0.0
    worker_infos: List[Dict[str, object]] = []
    for worker, future in enumerate(futures):
        blob, group_exec, counters = future.result()
        exec_seconds += group_exec
        info = dict(counters)
        info["worker"] = worker
        info["exec_seconds"] = group_exec
        worker_infos.append(info)
        t0 = time.perf_counter()
        if backend == "columnar":
            for entry in _decode_rows(blob):
                merged.update(_decode_columnar_shard(entry, dictionary))
        else:
            for rows in _decode_rows(blob):
                merged.update(rows)
        merge_seconds += time.perf_counter() - t0
    return merged, merge_seconds, exec_seconds, worker_infos


def shutdown_pools() -> None:
    """Tear down every cached pool (also registered ``atexit``)."""
    pool_registry.shutdown()


atexit.register(shutdown_pools)
