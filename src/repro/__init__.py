"""repro — Consistent Query Answering for Primary Keys and Conjunctive
Queries with Negated Atoms (Koutris & Wijsen, PODS 2018).

Quickstart
----------

>>> from repro import atom, Query, Variable, classify
>>> x, y = Variable("x"), Variable("y")
>>> q = Query([atom("R", [x], [y])], [atom("N", [x], [y])])
>>> classify(q).in_fo
True

Public surface:

* ``repro.core`` — atoms, queries, attack graphs, the Theorem 4.3
  classifier;
* ``repro.db`` — inconsistent databases, blocks, repairs, sqlite;
* ``repro.fo`` — first-order formulas, evaluation, SQL compilation;
* ``repro.cqa`` — consistent FO rewritings (Algorithm 1) and the
  certainty engine;
* ``repro.incremental`` — delta-maintained materialized certain-answer
  views over the plan IR;
* ``repro.obs`` — structured tracing, per-operator plan profiling, and
  the unified :class:`EngineMetrics` API;
* ``repro.matching`` — Hopcroft–Karp, Hall's theorem, S-COVERING;
* ``repro.reductions`` — the paper's hardness reductions, executable;
* ``repro.workloads`` — canonical queries and synthetic databases;
* ``repro.experiments`` — drivers regenerating every paper artifact.
"""

from .core import (
    Atom,
    AttackGraph,
    Classification,
    Constant,
    Diseq,
    Hardness,
    Query,
    QueryError,
    RelationSchema,
    Variable,
    Verdict,
    analyze,
    atom,
    classify,
    make_variables,
    parse_query,
    query_to_text,
)
from .cqa import (
    CertaintyEngine,
    NotInFO,
    certain,
    consistent_rewriting,
    has_consistent_rewriting,
    is_certain,
    is_certain_brute_force,
)
from .db import Database, database_from_facts, iter_repairs, satisfies
from .incremental import View, ViewManager, view_manager, view_stats
from .obs import EngineMetrics, PlanProfile, RunConfig, Tracer, collect_metrics

__version__ = "0.1.0"

__all__ = [
    "Atom",
    "AttackGraph",
    "CertaintyEngine",
    "Classification",
    "Constant",
    "Database",
    "Diseq",
    "EngineMetrics",
    "Hardness",
    "NotInFO",
    "PlanProfile",
    "Query",
    "QueryError",
    "RelationSchema",
    "RunConfig",
    "Tracer",
    "Variable",
    "Verdict",
    "View",
    "ViewManager",
    "analyze",
    "atom",
    "certain",
    "classify",
    "collect_metrics",
    "consistent_rewriting",
    "database_from_facts",
    "has_consistent_rewriting",
    "is_certain",
    "is_certain_brute_force",
    "iter_repairs",
    "make_variables",
    "parse_query",
    "query_to_text",
    "satisfies",
    "view_manager",
    "view_stats",
]
