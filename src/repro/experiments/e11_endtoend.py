"""E11 — the practicality claim: one SQL query vs everything else.

For an acyclic query (poll qa), compares the four strategies across
database sizes and locates the crossover where brute-force repair
enumeration becomes infeasible while the FO-based strategies scale.
"""

from __future__ import annotations

import random
from typing import List

from ..cqa.engine import CertaintyEngine
from ..db.sqlite_backend import load_database
from ..fo.sql import compile_to_sql
from ..workloads.poll import random_poll_database
from ..workloads.queries import poll_qa
from .harness import Table, timed


def crossover_table(
    people_sizes=(4, 8, 12, 16, 40, 100),
    brute_limit: int = 16,
    seed: int = 15,
) -> Table:
    rng = random.Random(seed)
    query = poll_qa()
    engine = CertaintyEngine(query)
    table = Table(
        "E11a: strategy crossover on poll qa",
        ["people", "facts", "repairs", "certain", "t_brute(s)",
         "t_interpreted(s)", "t_rewriting(s)", "t_sql(s)"],
    )
    for people in people_sizes:
        db = random_poll_database(people, max(3, people // 3),
                                  conflict_rate=0.5, rng=rng)
        ans_rw, t_rw = timed(engine.certain, db, "rewriting")
        ans_sql, t_sql = timed(engine.certain, db, "sql")
        ans_int, t_int = timed(engine.certain, db, "interpreted")
        assert ans_rw == ans_sql == ans_int
        if people <= brute_limit:
            ans_brute, t_brute = timed(engine.certain, db, "brute")
            assert ans_brute == ans_rw
            t_brute_txt = t_brute
        else:
            t_brute_txt = "skipped"
        repairs = db.restrict(set(query.relations)).repair_count()
        table.add_row(people, db.size(), repairs, ans_rw,
                      t_brute_txt, t_int, t_rw, t_sql)
    table.add_note(
        "brute force cost tracks the repair count (product of block "
        "sizes); the FO strategies track database size."
    )
    return table


def sql_amortization_table(people: int = 60, queries: int = 20,
                           seed: int = 16) -> Table:
    """Loading the database once and re-running the compiled SQL."""
    rng = random.Random(seed)
    query = poll_qa()
    engine = CertaintyEngine(query)
    db = random_poll_database(people, people // 3, conflict_rate=0.5, rng=rng)
    conn = load_database(db)
    sql = compile_to_sql(engine.rewriting, db.schemas)

    def run_once():
        return bool(conn.execute(sql).fetchone()[0])

    first, t_first = timed(run_once)
    _, t_warm = timed(run_once, repeat=queries)
    conn.close()
    table = Table(
        "E11b: compiled SQL amortization (load once, query many)",
        ["people", "facts", "certain", "t_first(s)", "t_warm(s)"],
    )
    table.add_row(people, db.size(), first, t_first, t_warm)
    return table


def run(seed: int = 15) -> List[Table]:
    """All E11 tables."""
    return [crossover_table(seed=seed), sql_amortization_table(seed=seed + 1)]
