"""E13 (ablations) — the design choices DESIGN.md calls out, measured.

* guard-driven quantifier enumeration vs naive active-domain scans in
  the FO evaluator;
* formula simplification: size and evaluation effect;
* memoization in the interpreted Algorithm 1.
"""

from __future__ import annotations

import itertools
import random
from typing import List

from ..core.terms import is_variable
from ..cqa.is_certain import CertaintyInterpreter
from ..cqa.rewriting import consistent_rewriting
from ..fo.eval import Evaluator
from ..fo.formula import (
    And,
    AtomF,
    Eq,
    Exists,
    Falsum,
    Forall,
    Not,
    Or,
    Verum,
    constants_of,
)
from ..fo.stats import stats
from ..workloads.generators import random_small_database
from ..workloads.poll import random_poll_database
from ..workloads.queries import poll_qa, poll_qb, q3, q_hall
from .harness import Table, timed


def naive_evaluate(formula, db) -> bool:
    """Reference evaluator: every quantifier scans the active domain."""
    consts = {c.value for c in constants_of(formula)}
    adom = sorted(db.active_domain() | consts, key=repr)

    def go(g, env):
        if isinstance(g, Verum):
            return True
        if isinstance(g, Falsum):
            return False
        if isinstance(g, AtomF):
            row = tuple(env[t] if is_variable(t) else t.value
                        for t in g.atom.terms)
            return db.contains(g.atom.relation, row)
        if isinstance(g, Eq):
            lv = env[g.lhs] if is_variable(g.lhs) else g.lhs.value
            rv = env[g.rhs] if is_variable(g.rhs) else g.rhs.value
            return lv == rv
        if isinstance(g, Not):
            return not go(g.sub, env)
        if isinstance(g, And):
            return all(go(s, env) for s in g.subs)
        if isinstance(g, Or):
            return any(go(s, env) for s in g.subs)
        if isinstance(g, (Exists, Forall)):
            combos = itertools.product(adom, repeat=len(g.vars))
            results = (go(g.sub, {**env, **dict(zip(g.vars, c))})
                       for c in combos)
            return any(results) if isinstance(g, Exists) else all(results)
        raise TypeError(g)

    return go(formula, {})


def evaluator_ablation_table(seed: int = 19) -> Table:
    rng = random.Random(seed)
    table = Table(
        "E13a: guard-driven vs naive quantifier enumeration",
        ["query", "people", "t_guarded(s)", "t_naive(s)", "speedup", "agree"],
    )
    for name, query in (("poll qa", poll_qa()), ("poll qb", poll_qb())):
        formula = consistent_rewriting(query)
        db = random_poll_database(12, 4, conflict_rate=0.5, rng=rng)
        guarded_ans, t_guarded = timed(
            lambda: Evaluator(formula, db).evaluate(), repeat=3)
        naive_ans, t_naive = timed(naive_evaluate, formula, db)
        table.add_row(
            name, 12, t_guarded, t_naive,
            f"{t_naive / max(t_guarded, 1e-9):.0f}x",
            guarded_ans == naive_ans,
        )
    return table


def simplify_ablation_table() -> Table:
    table = Table(
        "E13b: simplification effect on rewriting size",
        ["query", "raw nodes", "simplified nodes", "shrink"],
    )
    for name, query in (("q3", q3()), ("q_Hall(3)", q_hall(3)),
                        ("poll qb", poll_qb())):
        raw = stats(consistent_rewriting(query, simplify=False)).nodes
        simplified = stats(consistent_rewriting(query, simplify=True)).nodes
        table.add_row(name, raw, simplified, f"{raw / simplified:.2f}x")
    table.add_note(
        "a shrink of 1.00x is the finding: the rewriter's flattening "
        "smart constructors (make_and/make_or/make_exists) already emit "
        "normalized formulas inline, so the post-hoc fixpoint pass has "
        "nothing left to remove on these queries."
    )
    return table


def memoization_ablation_table(seed: int = 20) -> Table:
    rng = random.Random(seed)
    table = Table(
        "E13c: memoization in the interpreted Algorithm 1",
        ["query", "facts", "t_memoized(s)", "t_unmemoized(s)", "agree"],
    )
    for name, query in (("q3", q3()), ("q_Hall(2)", q_hall(2))):
        db = random_small_database(query, rng, domain_size=4,
                                   facts_per_relation=10)
        memo_ans, t_memo = timed(
            lambda: CertaintyInterpreter(query, db, memoize=True).run(query),
            repeat=3)
        plain_ans, t_plain = timed(
            lambda: CertaintyInterpreter(query, db, memoize=False).run(query))
        table.add_row(name, db.size(), t_memo, t_plain,
                      memo_ans == plain_ans)
    table.add_note(
        "memoization pays only when distinct block facts ground the "
        "residual query identically (shared non-key values); at these "
        "sizes the two variants are within noise of each other."
    )
    return table


def run(seed: int = 19) -> List[Table]:
    """All E13 tables."""
    return [
        evaluator_ablation_table(seed=seed),
        simplify_ablation_table(),
        memoization_ablation_table(seed=seed + 1),
    ]
