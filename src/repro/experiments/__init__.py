"""Experiment drivers regenerating every paper artifact (see DESIGN.md)."""

from . import (
    e1_bpm,
    e2_hall,
    e3_q4,
    e4_ufa,
    e5_attack_graphs,
    e6_rewriting_q3,
    e7_poll,
    e8_classify,
    e9_reductions,
    e10_reify,
    e11_endtoend,
    e12_certain_answers,
    e13_ablations,
    e14_census,
)
from .harness import Table, render_report, timed

ALL_EXPERIMENTS = (
    ("E1 (Fig. 1, Ex. 1.1, Lemma 5.2)", e1_bpm.run),
    ("E2 (Fig. 2, Ex. 1.2/6.12)", e2_hall.run),
    ("E3 (Fig. 3, Ex. 7.1)", e3_q4.run),
    ("E4 (Fig. 4, Lemma 5.3)", e4_ufa.run),
    ("E5 (Ex. 4.1/4.2)", e5_attack_graphs.run),
    ("E6 (Ex. 4.5/6.11)", e6_rewriting_q3.run),
    ("E7 (Ex. 4.6)", e7_poll.run),
    ("E8 (Thm 4.3 decidability)", e8_classify.run),
    ("E9 (Lemmas 5.4/5.6/5.7)", e9_reductions.run),
    ("E10 (Prop. 7.2)", e10_reify.run),
    ("E11 (practicality / SQL)", e11_endtoend.run),
    ("E12 (extension: certain answers, free variables)",
     e12_certain_answers.run),
    ("E13 (ablations: evaluator guards, simplification, memoization)",
     e13_ablations.run),
    ("E14 (census: the dichotomy over all small queries)",
     e14_census.run),
)


def run_all() -> str:
    """Run every experiment and render one combined report."""
    parts = []
    for title, runner in ALL_EXPERIMENTS:
        tables = runner()
        parts.append(render_report(tables, heading=f"# {title}"))
    return "\n".join(parts)


__all__ = ["ALL_EXPERIMENTS", "Table", "render_report", "run_all", "timed"]
