"""E8 — Theorem 4.3's decision procedure is polynomial in |q|.

The paper remarks that acyclicity of the attack graph "can be decided in
polynomial time in the size of q".  This experiment measures the
classifier's wall time on random query families of growing size and on
the q_Hall family.
"""

from __future__ import annotations

import random
from typing import List

from ..core.classify import Verdict, classify
from ..workloads.generators import QueryParams, random_query
from ..workloads.queries import q_hall
from .harness import Table, timed


def random_family_table(
    sizes=(2, 4, 6, 8, 12), per_size: int = 10, seed: int = 10
) -> Table:
    rng = random.Random(seed)
    table = Table(
        "E8a: classification time on random queries",
        ["atoms", "queries", "in FO", "not in FO", "avg t_classify(s)"],
    )
    for n in sizes:
        params = QueryParams(
            n_positive=max(1, n // 2),
            n_negative=n - max(1, n // 2),
            n_variables=max(3, n),
        )
        in_fo = 0
        not_fo = 0
        total_t = 0.0
        for _ in range(per_size):
            query = random_query(params, rng)
            verdict, t = timed(classify, query)
            total_t += t
            if verdict.verdict is Verdict.IN_FO:
                in_fo += 1
            elif verdict.verdict is Verdict.NOT_IN_FO:
                not_fo += 1
        table.add_row(n, per_size, in_fo, not_fo, total_t / per_size)
    return table


def hall_family_table(sizes=(1, 2, 4, 8, 16, 32), seed: int = 11) -> Table:
    table = Table(
        "E8b: classification time on q_Hall(ell)",
        ["ell", "verdict", "t_classify(s)"],
    )
    for ell in sizes:
        query = q_hall(ell)
        verdict, t = timed(classify, query, repeat=3)
        table.add_row(ell, verdict.verdict.value, t)
    return table


def run(seed: int = 10) -> List[Table]:
    """All E8 tables."""
    return [random_family_table(seed=seed), hall_family_table(seed=seed + 1)]
