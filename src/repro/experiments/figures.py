"""ASCII figures for the experiment reports.

Textual bar charts (optionally log-scaled) keep EXPERIMENTS.md
self-contained with no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple


def bar_chart(
    title: str,
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """A horizontal bar chart from (label, value) pairs.

    Non-positive values render as empty bars; with *log_scale* the bar
    length is proportional to log10(value) shifted above the smallest
    positive value.
    """
    lines = [f"### {title}", ""]
    if not rows:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(label) for label, _ in rows)
    positives = [v for _, v in rows if v > 0]
    if not positives:
        scale_min, scale_max = 0.0, 1.0
    elif log_scale:
        scale_min = math.log10(min(positives)) - 0.05
        scale_max = math.log10(max(positives))
    else:
        scale_min, scale_max = 0.0, max(positives)
    span = max(scale_max - scale_min, 1e-12)

    for label, value in rows:
        if value <= 0:
            length = 0
        elif log_scale:
            length = int(round(width * (math.log10(value) - scale_min) / span))
        else:
            length = int(round(width * (value - scale_min) / span))
        length = max(0, min(width, length))
        bar = "#" * length
        shown = f"{value:.4g}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {shown}")
    if log_scale:
        lines.append(f"(log scale, {width} chars "
                     f"= 10^{scale_max:.2f}{unit})")
    return "\n".join(lines)


def timing_chart(
    title: str,
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
) -> str:
    """A log-scaled chart for wall-clock timings in seconds."""
    return bar_chart(title, rows, width=width, log_scale=True, unit="s")


def growth_series(values: Sequence[float]) -> Optional[float]:
    """The average ratio between consecutive values (growth factor), or
    None when fewer than two positive values exist.  Used to assert
    shapes like "roughly doubles per step"."""
    pairs = [
        (a, b) for a, b in zip(values, values[1:]) if a > 0 and b > 0
    ]
    if not pairs:
        return None
    ratios = [b / a for a, b in pairs]
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))
