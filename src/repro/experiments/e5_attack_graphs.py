"""E5 — Examples 4.1 and 4.2: attack graphs edge-for-edge.

The paper computes the attack graphs of q2 (Example 4.1) and q3
(Example 4.2) explicitly; this experiment regenerates them and checks
the exact edge sets, the F^{+,q} closures, and a witness sequence.
"""

from __future__ import annotations

from typing import List

from ..core.attack_graph import AttackGraph, attack_witness
from ..core.fds import oplus
from ..core.terms import Variable
from ..workloads.queries import q2_example41, q3
from .harness import Table


def example41_table() -> Table:
    query = q2_example41()
    graph = AttackGraph(query)
    edges = sorted((f.relation, g.relation) for f, g in graph.edges)
    expected = [("R", "P"), ("R", "S"), ("S", "P"), ("S", "R")]
    table = Table(
        "E5a: Example 4.1 — attack graph of q2 = {P(xy), ~R(x,y), ~S(y,x)}",
        ["quantity", "computed", "paper"],
    )
    table.add_row("edges", edges, expected)
    table.add_row("match", edges == expected, True)
    for name, exp in [("P", "{x,y}"), ("R", "{x}"), ("S", "{y}")]:
        atom_obj = query.atom_for(name)
        closure = "{" + ",".join(sorted(v.name for v in oplus(query, atom_obj))) + "}"
        table.add_row(f"{name}^(+,q)", closure, exp)
    return table


def example42_table() -> Table:
    query = q3()
    graph = AttackGraph(query)
    edges = sorted((f.relation, g.relation) for f, g in graph.edges)
    table = Table(
        "E5b: Example 4.2 — attack graph of q3 = {P(x,y), ~N(c,y)}",
        ["quantity", "computed", "paper"],
    )
    table.add_row("edges", edges, [("N", "P")])
    table.add_row("P^(+,q)", sorted(v.name for v in oplus(query, query.atom_for("P"))), ["x"])
    table.add_row("N^(+,q)", sorted(v.name for v in oplus(query, query.atom_for("N"))), [])
    witness = attack_witness(query, query.atom_for("N"), Variable("x"))
    table.add_row("witness for N|y~>x", tuple(v.name for v in witness), ("y", "x"))
    return table


def run() -> List[Table]:
    """All E5 tables."""
    return [example41_table(), example42_table()]
