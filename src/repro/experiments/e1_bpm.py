"""E1 — Figure 1 / Example 1.1 / Lemma 5.2.

CERTAINTY(q1) is the complement of left-saturating bipartite matching.
This experiment (a) replays the Figure 1 database, (b) validates the
matching solver against brute force on small instances, and (c) shows
the exponential-vs-polynomial runtime shape as instances grow.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..cqa.brute_force import find_falsifying_repair, is_certain_brute_force
from ..matching.bpm_certainty import is_certain_q1
from ..matching.hopcroft_karp import has_perfect_matching
from ..reductions.bpm import bpm_to_database, matching_from_repair
from ..workloads.bipartite import (
    bipartite_with_perfect_matching,
    bipartite_without_perfect_matching,
    figure_1_graph,
)
from ..workloads.queries import q1
from .harness import Table, timed


def figure1_table() -> Table:
    """The worked example of Figure 1."""
    table = Table(
        "E1a: Figure 1 database",
        ["quantity", "value", "paper says"],
    )
    graph = figure_1_graph()
    db = bpm_to_database(graph)
    query = q1()
    certain = is_certain_brute_force(query, db)
    table.add_row("CERTAINTY(q1)", certain, "false (a matching exists)")
    repair = find_falsifying_repair(query, db)
    matching = matching_from_repair(repair.restrict(["R", "S"]))
    table.add_row(
        "matching from falsifying repair",
        sorted(matching.items()),
        "Alice-George, Maria-Bob (one valid pairing)",
    )
    return table


def scaling_table(
    sizes: Sequence[int] = (2, 3, 4, 5, 8, 12, 20, 40),
    brute_limit: int = 5,
    seed: int = 1,
) -> Table:
    """Matching solver vs brute force across instance sizes."""
    rng = random.Random(seed)
    query = q1()
    table = Table(
        "E1b: CERTAINTY(q1) — matching (poly) vs repair enumeration (exp)",
        ["m", "has PM", "certain", "t_matching(s)", "t_brute(s)", "agree"],
    )
    for m in sizes:
        graph = (
            bipartite_with_perfect_matching(m, 0.3, rng)
            if m % 2 == 0
            else bipartite_without_perfect_matching(m, rng)
        )
        db = bpm_to_database(graph)
        certain, t_match = timed(is_certain_q1, db, repeat=3)
        if m <= brute_limit:
            brute, t_brute = timed(is_certain_brute_force, query, db)
            agree = brute == certain
            t_brute_txt = t_brute
        else:
            agree, t_brute_txt = "-", "skipped"
        table.add_row(m, has_perfect_matching(graph), certain,
                      t_match, t_brute_txt, agree)
    table.add_note(
        "brute force enumerates up to 2^(2m) repairs and is skipped "
        f"beyond m = {brute_limit}; the matching solver stays flat."
    )
    return table


def run(seed: int = 1) -> List[Table]:
    """All E1 tables."""
    return [figure1_table(), scaling_table(seed=seed)]
