"""Experiment harness: result tables and timing helpers.

Every experiment driver returns one or more :class:`Table` objects; the
benchmark modules and the EXPERIMENTS.md generator render them as
aligned text.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple


@dataclass
class Table:
    """A titled result table with aligned text rendering."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]]
        cells += [[_format_cell(v) for v in row] for row in self.rows]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [f"## {self.title}", ""]
        header, *body = cells
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4f}"
    return str(value)


def timed(fn: Callable, *args, repeat: int = 1, **kwargs) -> Tuple[object, float]:
    """(result, best wall-clock seconds over *repeat* runs)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def render_report(tables: Sequence[Table], heading: str = "") -> str:
    """Concatenate tables into one report string."""
    parts = [heading] if heading else []
    parts += [t.render() for t in tables]
    return "\n\n".join(parts) + "\n"
