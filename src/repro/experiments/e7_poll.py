"""E7 — Example 4.6: the town-poll classification table and end-to-end
answering of the acyclic queries on generated poll data.
"""

from __future__ import annotations

import random
from typing import List

from ..core.attack_graph import AttackGraph
from ..core.classify import classify
from ..cqa.engine import CertaintyEngine
from ..workloads.poll import random_poll_database
from ..workloads.queries import poll_q1, poll_q2, poll_qa, poll_qb
from .harness import Table, timed


def classification_table() -> Table:
    table = Table(
        "E7a: Example 4.6 — classification of the poll queries",
        ["query", "attack edges", "verdict", "paper"],
    )
    expectations = [
        ("q1", poll_q1(), "cyclic: no consistent FO rewriting"),
        ("q2", poll_q2(), "cyclic: no consistent FO rewriting"),
        ("qa", poll_qa(), "acyclic: one attack Lives->Likes"),
        ("qb", poll_qb(), "acyclic: Born->Likes and Lives->Likes"),
    ]
    for name, query, paper in expectations:
        graph = AttackGraph(query)
        edges = sorted(f"{f.relation}->{g.relation}" for f, g in graph.edges)
        table.add_row(name, edges, classify(query).verdict.value, paper)
    return table


def answering_table(
    sizes=((6, 3), (12, 5), (30, 8)),
    brute_limit: int = 14,
    seed: int = 9,
) -> Table:
    rng = random.Random(seed)
    table = Table(
        "E7b: answering qa and qb on random poll databases",
        ["query", "people", "facts", "certain", "t_rewriting(s)",
         "t_sql(s)", "t_interpreted(s)", "t_brute(s)"],
    )
    for name, query in (("qa", poll_qa()), ("qb", poll_qb())):
        engine = CertaintyEngine(query)
        for people, towns in sizes:
            db = random_poll_database(people, towns, conflict_rate=0.5, rng=rng)
            ans_rw, t_rw = timed(engine.certain, db, "rewriting")
            ans_sql, t_sql = timed(engine.certain, db, "sql")
            ans_int, t_int = timed(engine.certain, db, "interpreted")
            if people <= brute_limit:
                ans_brute, t_brute = timed(engine.certain, db, "brute")
                assert ans_brute == ans_rw
                t_brute_txt = t_brute
            else:
                t_brute_txt = "skipped"
            assert ans_rw == ans_sql == ans_int
            table.add_row(name, people, db.size(), ans_rw,
                          t_rw, t_sql, t_int, t_brute_txt)
    return table


def run(seed: int = 9) -> List[Table]:
    """All E7 tables."""
    return [classification_table(), answering_table(seed=seed)]
