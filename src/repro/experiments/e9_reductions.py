"""E9 — Lemmas 5.4, 5.6, 5.7: the hardness reductions preserve certainty.

Each reduction is run on random small source instances, and the source
and target certainty answers (both computed by brute force) must agree.
"""

from __future__ import annotations

import random
from typing import List

from ..cqa.brute_force import is_certain_brute_force
from ..reductions.drop_negated import reduce_database
from ..reductions.gadgets import reduce_lemma_5_6, reduce_lemma_5_7
from ..workloads.generators import random_small_database
from ..workloads.queries import (
    poll_q1,
    poll_q2,
    q1,
    q2,
    q2_example41,
    q_hall,
)
from .harness import Table


def lemma54_table(trials: int = 30, seed: int = 12) -> Table:
    """q' = q_Hall(1) embedded into q = q_Hall(3) by adding negated atoms."""
    rng = random.Random(seed)
    sub = q_hall(1)
    full = q_hall(3)
    agree = True
    for _ in range(trials):
        db = random_small_database(sub, rng, domain_size=3, facts_per_relation=4)
        reduced = reduce_database(sub, full, db)
        if is_certain_brute_force(sub, db) != is_certain_brute_force(full, reduced):
            agree = False
    table = Table(
        "E9a: Lemma 5.4 — dropping negated atoms (q_Hall(1) -> q_Hall(3))",
        ["trials", "certainty preserved"],
    )
    table.add_row(trials, agree)
    return table


def lemma56_table(trials: int = 25, seed: int = 13) -> Table:
    """q1 reduced into queries with a positive/negative two-cycle."""
    rng = random.Random(seed)
    source = q1()
    table = Table(
        "E9b: Lemma 5.6 — q1 into two-cycles with one negated atom",
        ["target", "trials", "certainty preserved"],
    )
    targets = [
        ("q1 itself", q1(), "R", "S"),
        ("poll_q1", poll_q1(), "Mayor", "Lives"),
    ]
    for name, target, f_name, g_name in targets:
        f = target.atom_for(f_name)
        g = target.atom_for(g_name)
        agree = True
        for _ in range(trials):
            db = random_small_database(source, rng, domain_size=3,
                                       facts_per_relation=4)
            _, out = reduce_lemma_5_6(target, f, g, db)
            if is_certain_brute_force(source, db) != is_certain_brute_force(target, out):
                agree = False
        table.add_row(name, trials, agree)
    return table


def lemma57_table(trials: int = 25, seed: int = 14) -> Table:
    """q2 reduced into queries with a two-cycle of negated atoms."""
    rng = random.Random(seed)
    source = q2()
    table = Table(
        "E9c: Lemma 5.7 — q2 into two-cycles of negated atoms",
        ["target", "trials", "certainty preserved"],
    )
    targets = [
        ("q2 itself", q2(), "S", "T"),
        ("Example 4.1", q2_example41(), "R", "S"),
        ("poll_q2", poll_q2(), "Lives", "Mayor"),
    ]
    for name, target, f_name, g_name in targets:
        f = target.atom_for(f_name)
        g = target.atom_for(g_name)
        agree = True
        for _ in range(trials):
            db = random_small_database(source, rng, domain_size=3,
                                       facts_per_relation=4)
            _, out = reduce_lemma_5_7(target, f, g, db)
            if is_certain_brute_force(source, db) != is_certain_brute_force(target, out):
                agree = False
        table.add_row(name, trials, agree)
    return table


def run(seed: int = 12) -> List[Table]:
    """All E9 tables."""
    return [
        lemma54_table(seed=seed),
        lemma56_table(seed=seed + 1),
        lemma57_table(seed=seed + 2),
    ]
