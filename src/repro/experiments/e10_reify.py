"""E10 — Proposition 7.2: attacked variables are not reifiable.

For every attack F ⇝ x of the canonical queries, the two-repair gadget
database must (a) have exactly two repairs, (b) satisfy q in both, and
(c) falsify q_[x↦c] in some repair for *every* constant c — exhibiting
non-reifiability.
"""

from __future__ import annotations

from typing import List

from ..core.attack_graph import AttackGraph
from ..core.terms import Constant
from ..cqa.brute_force import is_certain_brute_force
from ..reductions.reify_gadget import build_gadget
from ..workloads.queries import poll_q1, q1, q2, q3
from .harness import Table


def gadget_table() -> Table:
    table = Table(
        "E10: Proposition 7.2 — two-repair gadgets for attacked variables",
        ["query", "attack", "repairs", "q certain", "q[x->a]", "q[x->b]",
         "non-reifiable"],
    )
    for name, query in [("q1", q1()), ("q2", q2()), ("q3", q3()),
                        ("poll_q1", poll_q1())]:
        graph = AttackGraph(query)
        for atom_obj in query.atoms:
            for var in sorted(graph.attacked_vars(atom_obj)):
                gadget = build_gadget(query, atom_obj, var)
                certain = is_certain_brute_force(query, gadget.db)
                certain_a = is_certain_brute_force(
                    query.substitute({var: Constant(gadget.constant_a)}),
                    gadget.db,
                )
                certain_b = is_certain_brute_force(
                    query.substitute({var: Constant(gadget.constant_b)}),
                    gadget.db,
                )
                table.add_row(
                    name,
                    f"{atom_obj.relation} ~> {var.name}",
                    gadget.db.repair_count(),
                    certain,
                    certain_a,
                    certain_b,
                    certain and not certain_a and not certain_b,
                )
    return table


def run() -> List[Table]:
    """All E10 tables."""
    return [gadget_table()]
