"""E12 (extension) — certain answers for queries with free variables.

Section 1 of the paper: free variables can be treated as constants, so
the Boolean machinery answers non-Boolean queries too.  This experiment
validates the answer strategies against each other — including the
sharded parallel executor, forced through real partitioning and forked
workers even at these sizes — and measures the single-SELECT SQL path
on growing databases.
"""

from __future__ import annotations

import random
from typing import List

from ..core.terms import Variable
from ..cqa.certain_answers import (
    OpenQuery,
    certain_answers,
    cross_validate_answers,
)
from ..parallel import parallel_certain_answers, shutdown_pools
from ..workloads.generators import random_small_database
from ..workloads.poll import random_poll_database
from ..workloads.queries import poll_qa, q3
from .harness import Table, timed


def agreement_table(trials: int = 20, seed: int = 17) -> Table:
    rng = random.Random(seed)
    table = Table(
        "E12a: certain-answer strategies agree "
        "(brute / interpreted / rewriting / compiled / SQL / parallel)",
        ["query", "free vars", "trials", "methods", "all agree"],
    )
    cases = [
        ("q3", q3(), [Variable("x")]),
        ("poll qa", poll_qa(), [Variable("p")]),
        ("poll qa", poll_qa(), [Variable("p"), Variable("t")]),
    ]
    for name, query, free in cases:
        open_query = OpenQuery(query, free)
        agree = True
        n_methods = 0
        for _ in range(trials):
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=4)
            results = cross_validate_answers(open_query, db, parallel_jobs=2)
            n_methods = max(n_methods, len(results))
            if len(set(results.values())) != 1:
                agree = False
        table.add_row(name, ",".join(v.name for v in free), trials,
                      n_methods, agree)
    return table


def scaling_table(people_sizes=(10, 40, 160), seed: int = 18) -> Table:
    rng = random.Random(seed)
    open_query = OpenQuery(poll_qa(), [Variable("p")])
    table = Table(
        "E12b: one SQL SELECT returns the whole certain-answer set",
        ["people", "facts", "answers", "t_sql(s)", "t_rewriting(s)",
         "t_parallel(s)"],
    )
    for people in people_sizes:
        db = random_poll_database(people, max(3, people // 4),
                                  conflict_rate=0.5, rng=rng)
        answers_sql, t_sql = timed(certain_answers, open_query, db, "sql")
        answers_rw, t_rw = timed(certain_answers, open_query, db, "rewriting")
        # Force real sharded execution (no serial fallback) so the table
        # exercises partitioning + forked workers even at these sizes;
        # a second call reuses the warm pool, which is what we time.
        parallel_certain_answers(open_query, db, jobs=2, min_facts=0,
                                 shard_factor=2)
        answers_par, t_par = timed(parallel_certain_answers, open_query, db,
                                   jobs=2, min_facts=0, shard_factor=2)
        assert answers_sql == answers_rw == answers_par
        table.add_row(people, db.size(), len(answers_sql), t_sql, t_rw, t_par)
    return table


def run(seed: int = 17) -> List[Table]:
    """All E12 tables."""
    try:
        return [agreement_table(seed=seed), scaling_table(seed=seed + 1)]
    finally:
        shutdown_pools()  # don't leak forked workers into later experiments
