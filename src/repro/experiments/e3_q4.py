"""E3 — Figure 3 / Example 7.1: q4, in FO without reification.

q4 has non-weakly-guarded negation and a cyclic attack graph, yet
CERTAINTY(q4) is decided by the counting argument m·n > m + n plus
degenerate cases.  The experiment replays Figure 3, validates the
combinatorial solver against brute force, and shows its flat runtime.
"""

from __future__ import annotations

import random
from typing import List

from ..core.atoms import RelationSchema
from ..cqa.brute_force import is_certain_brute_force
from ..db.database import Database
from ..reductions.q4 import is_certain_q4
from ..workloads.generators import random_small_database
from ..workloads.queries import q4
from .harness import Table, timed


def figure3_database() -> Database:
    """Figure 3: three X-facts, two Y-facts, R and S immaterial."""
    db = Database([
        RelationSchema("X", 1, 1), RelationSchema("Y", 1, 1),
        RelationSchema("R", 2, 1), RelationSchema("S", 2, 1),
    ])
    for a in ("a1", "a2", "a3"):
        db.add("X", (a,))
    for b in ("b1", "b2"):
        db.add("Y", (b,))
    # Some arbitrary R/S content; with 3·2 > 3+2 it cannot matter.
    db.add("R", ("a1", "b1"))
    db.add("S", ("b2", "a3"))
    return db


def figure3_table() -> Table:
    table = Table(
        "E3a: Figure 3 — all repairs satisfy q4 when m*n > m+n",
        ["m", "n", "m*n > m+n", "combinatorial", "brute force"],
    )
    db = figure3_database()
    table.add_row(3, 2, True, is_certain_q4(db), is_certain_brute_force(q4(), db))
    return table


def agreement_table(trials: int = 150, seed: int = 4) -> Table:
    """Exhaustive random validation including all degenerate cases."""
    rng = random.Random(seed)
    query = q4()
    table = Table(
        "E3b: combinatorial q4 solver vs brute force",
        ["trials", "certain count", "degenerate hit", "all agree"],
    )
    agree = True
    certain = 0
    degenerate = 0
    for _ in range(trials):
        db = random_small_database(query, rng, domain_size=3,
                                   facts_per_relation=4)
        m = len(db.facts("X"))
        n = len(db.facts("Y"))
        if m and n and m * n <= m + n:
            degenerate += 1
        fast = is_certain_q4(db)
        brute = is_certain_brute_force(query, db)
        if fast != brute:
            agree = False
        certain += int(brute)
    table.add_row(trials, certain, degenerate, agree)
    return table


def scaling_table(sizes=(2, 4, 8, 32, 128, 512), seed: int = 5) -> Table:
    """The combinatorial solver is linear in the database."""
    rng = random.Random(seed)
    table = Table(
        "E3c: q4 combinatorial solver scaling",
        ["m = n", "certain", "t_solver(s)"],
    )
    for m in sizes:
        db = Database([
            RelationSchema("X", 1, 1), RelationSchema("Y", 1, 1),
            RelationSchema("R", 2, 1), RelationSchema("S", 2, 1),
        ])
        for i in range(m):
            db.add("X", (f"a{i}",))
            db.add("Y", (f"b{i}",))
            db.add("R", (f"a{i}", f"b{rng.randrange(m)}"))
        answer, t = timed(is_certain_q4, db, repeat=3)
        table.add_row(m, answer, t)
    return table


def run(seed: int = 4) -> List[Table]:
    """All E3 tables."""
    return [figure3_table(), agreement_table(seed=seed), scaling_table(seed=seed + 1)]
