"""E4 — Figure 4 / Lemma 5.3: UFA ≤fo CERTAINTY(q2).

The reduction maps forest connectivity to certainty for
q2 = {R(x̲ y̲), ¬S(x̲, y), ¬T(y̲, x)}.  The experiment validates the
equivalence on small instances against brute force and shows the
union-find oracle staying flat while repair enumeration explodes.
"""

from __future__ import annotations

import random
from typing import List

from ..cqa.brute_force import is_certain_brute_force
from ..reductions.ufa import Forest, ufa_to_database
from ..workloads.forests import ufa_instance
from ..workloads.queries import q2
from .harness import Table, timed


def figure4_table() -> Table:
    """A Figure 4 style instance: two path components."""
    forest = Forest()
    for a, b in [("u", "s1"), ("s1", "s2")]:
        forest.add_edge(a, b)
    for a, b in [("v", "w1"), ("w1", "w2")]:
        forest.add_edge(a, b)
    query = q2()
    table = Table(
        "E4a: Figure 4 — two components, u and v disconnected",
        ["u", "v", "connected", "certain (brute)", "match"],
    )
    for u, v, label in [("u", "v", "across"), ("u", "s2", "within")]:
        db = ufa_to_database(forest, u, v)
        certain = is_certain_brute_force(query, db)
        connected = forest.connected(u, v)
        table.add_row(u, v, connected, certain, certain == connected)
    return table


def agreement_table(trials: int = 20, seed: int = 6) -> Table:
    rng = random.Random(seed)
    query = q2()
    table = Table(
        "E4b: UFA reduction — certainty equals connectivity",
        ["trials", "connected count", "all agree"],
    )
    agree = True
    connected_count = 0
    for t in range(trials):
        forest, u, v = ufa_instance(
            rng.randint(2, 4), rng.randint(2, 3), connected=bool(t % 2), rng=rng
        )
        db = ufa_to_database(forest, u, v)
        certain = is_certain_brute_force(query, db)
        if certain != forest.connected(u, v):
            agree = False
        connected_count += int(forest.connected(u, v))
    table.add_row(trials, connected_count, agree)
    return table


def scaling_table(sizes=(3, 4, 5, 6, 50, 500), brute_limit: int = 6,
                  seed: int = 7) -> Table:
    rng = random.Random(seed)
    query = q2()
    table = Table(
        "E4c: union-find (poly) vs repair enumeration (exp) on UFA",
        ["component size", "connected", "t_union_find(s)", "t_brute(s)"],
    )
    for size in sizes:
        forest, u, v = ufa_instance(size, max(2, size // 2),
                                    connected=True, rng=rng)
        answer, t_uf = timed(forest.connected, u, v, repeat=3)
        if size <= brute_limit:
            db = ufa_to_database(forest, u, v)
            brute, t_brute = timed(is_certain_brute_force, query, db)
            assert brute == answer
            t_brute_txt = t_brute
        else:
            t_brute_txt = "skipped"
        table.add_row(size, answer, t_uf, t_brute_txt)
    table.add_note(
        "the reduced database has one S-block and one T-block per edge; "
        "repair count is 4^edges."
    )
    return table


def run(seed: int = 6) -> List[Table]:
    """All E4 tables."""
    return [figure4_table(), agreement_table(seed=seed), scaling_table(seed=seed + 1)]
