"""E14 (census) — the dichotomy over the COMPLETE space of small queries.

Enumerates every sjfBCQ¬ query with ≤2 positive and ≤2 negated atoms
over two variables (arities ≤2, all key sizes, up to relation renaming;
3282 queries) and:

* classifies all of them (Theorem 4.3's procedure is total and never
  crashes; Lemma 4.9's 2-cycle guarantee is asserted internally for
  every cyclic weakly-guarded query);
* verifies the rewriting against brute force on random databases for a
  deterministic sample of the FO queries — the dichotomy's sufficiency
  direction checked across the whole structural space, not just
  hand-picked examples.
"""

from __future__ import annotations

import random
from typing import List

from ..core.classify import classify
from ..cqa.brute_force import is_certain_brute_force
from ..cqa.engine import CertaintyEngine
from ..workloads.census import (
    enumerate_queries,
    enumerate_wg_not_guarded_queries,
)
from ..workloads.generators import random_small_database
from .harness import Table, timed


def classification_census_table() -> Table:
    """The verdict/hardness histogram over the full enumeration."""
    table = Table(
        "E14a: classification census (2 vars, <=2 pos, <=2 neg, arity <=2)",
        ["verdict", "hardness", "queries"],
    )
    counts = {}
    total = 0
    for query in enumerate_queries():
        c = classify(query)
        counts[(c.verdict, c.hardness)] = counts.get(
            (c.verdict, c.hardness), 0) + 1
        total += 1
    for (verdict, hardness), n in sorted(
            counts.items(), key=lambda kv: (-kv[1],)):
        table.add_row(verdict.value, hardness.value, n)
    table.add_note(f"total queries enumerated: {total}")
    return table


def dichotomy_verification_table(
    every_nth: int = 1,
    dbs_per_query: int = 2,
    seed: int = 23,
) -> Table:
    """Rewriting vs brute force across a deterministic census sample."""
    rng = random.Random(seed)
    table = Table(
        "E14b: Theorem 4.3(2) verified across the census",
        ["queries checked", "databases", "all agree", "t_total(s)"],
    )

    def run():
        checked = 0
        agree = True
        for i, query in enumerate(enumerate_queries()):
            if i % every_nth:
                continue
            if not classify(query).in_fo:
                continue
            engine = CertaintyEngine(query)
            for _ in range(dbs_per_query):
                db = random_small_database(query, rng, domain_size=2,
                                           facts_per_relation=3)
                if engine.certain(db, "rewriting") != \
                        is_certain_brute_force(query, db):
                    agree = False
            checked += 1
        return checked, agree

    (checked, agree), elapsed = timed(run)
    table.add_row(checked, checked * dbs_per_query, agree, elapsed)
    return table


def beyond_gnfo_table(dbs_per_query: int = 2, seed: int = 29) -> Table:
    """The weakly-guarded-but-not-guarded family (not in GNFO, §2):
    full classification and dichotomy verification."""
    rng = random.Random(seed)
    table = Table(
        "E14c: the beyond-GNFO census (weakly guarded, not guarded)",
        ["queries", "in FO", "not in FO", "FO verified vs brute",
         "all agree"],
    )
    queries = list(enumerate_wg_not_guarded_queries())
    in_fo = [q for q in queries if classify(q).in_fo]
    agree = True
    for query in in_fo:
        engine = CertaintyEngine(query)
        for _ in range(dbs_per_query):
            db = random_small_database(query, rng, domain_size=2,
                                       facts_per_relation=3)
            if engine.certain(db, "rewriting") != \
                    is_certain_brute_force(query, db):
                agree = False
    table.add_row(len(queries), len(in_fo), len(queries) - len(in_fo),
                  len(in_fo) * dbs_per_query, agree)
    table.add_note(
        "these queries have a ternary negated atom guarded only "
        "pairwise — the regime where the paper extends past "
        "guarded-negation logics."
    )
    return table


def constant_census_table(
    every_nth: int = 50,
    dbs_per_query: int = 1,
    seed: int = 31,
) -> Table:
    """The census extended with one constant (q3/q_Hall-like shapes:
    constants may sit in key or value positions).  40535 queries;
    classification of all, dichotomy verification on a sample."""
    from ..core.terms import Constant

    rng = random.Random(seed)
    table = Table(
        "E14d: census with one constant (q3 / q_Hall shapes)",
        ["queries", "in FO", "sampled FO verified", "all agree"],
    )
    total = 0
    in_fo_count = 0
    verified = 0
    agree = True
    for i, query in enumerate(
            enumerate_queries(constants=(Constant("c"),))):
        total += 1
        c = classify(query)
        if not c.in_fo:
            continue
        in_fo_count += 1
        if i % every_nth:
            continue
        engine = CertaintyEngine(query)
        for _ in range(dbs_per_query):
            db = random_small_database(query, rng, domain_size=2,
                                       facts_per_relation=3)
            if engine.certain(db, "rewriting") != \
                    is_certain_brute_force(query, db):
                agree = False
        verified += 1
    table.add_row(total, in_fo_count, verified, agree)
    return table


def run(seed: int = 23) -> List[Table]:
    """All E14 tables."""
    return [
        classification_census_table(),
        dichotomy_verification_table(seed=seed),
        beyond_gnfo_table(seed=seed + 6),
        constant_census_table(seed=seed + 8),
    ]
