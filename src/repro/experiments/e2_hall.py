"""E2 — Figure 2 / Examples 1.2 and 6.12: q_Hall.

The consistent FO rewriting of q_Hall exists for every ell, and its size
grows exponentially in ell (the paper notes this at the end of Example
6.12).  This experiment measures the growth, and validates the rewriting
against the Hall's-theorem solver and brute force on S-COVERING
instances.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..cqa.brute_force import is_certain_brute_force
from ..cqa.engine import CertaintyEngine
from ..fo.stats import stats
from ..matching.hall import SCoveringInstance
from ..reductions.scovering import query_for, scovering_to_database
from ..workloads.queries import q_hall
from .harness import Table, timed


def rewriting_growth_table(max_sets: int = 6) -> Table:
    """Formula size of the q_Hall rewriting as ell grows."""
    table = Table(
        "E2a: size of the consistent FO rewriting of q_Hall",
        ["ell", "AST nodes", "atoms", "quantifiers", "depth", "t_construct(s)"],
    )
    for ell in range(1, max_sets + 1):
        query = q_hall(ell)
        engine = CertaintyEngine(query)
        _, t = timed(lambda: CertaintyEngine(q_hall(ell)).rewriting)
        s = stats(engine.rewriting)
        table.add_row(ell, s.nodes, s.atoms, s.quantifiers, s.quantifier_depth, t)
    table.add_note(
        "Example 6.12: the length of the rewriting is exponential in the "
        "size of the rewritten query."
    )
    return table


def random_instance(
    n_elements: int, n_sets: int, rng: random.Random
) -> SCoveringInstance:
    elements = list(range(n_elements))
    subsets = [
        [e for e in elements if rng.random() < 0.5] for _ in range(n_sets)
    ]
    return SCoveringInstance(elements, subsets)


def agreement_table(
    trials: int = 25,
    max_elements: int = 4,
    max_sets: int = 3,
    seed: int = 2,
) -> Table:
    """Four-way agreement: Hall solver, rewriting, interpreted, brute."""
    rng = random.Random(seed)
    table = Table(
        "E2b: S-COVERING vs CERTAINTY(q_Hall) — solver agreement",
        ["trials", "certain count", "all solvers agree"],
    )
    agree = True
    certain_count = 0
    for _ in range(trials):
        inst = random_instance(
            rng.randint(1, max_elements), rng.randint(0, max_sets), rng
        )
        db = scovering_to_database(inst)
        query = query_for(inst)
        engine = CertaintyEngine(query)
        answers = {
            "hall": not inst.solvable,
            "brute": is_certain_brute_force(query, db),
            "rewriting": engine.certain(db, "rewriting"),
            "interpreted": engine.certain(db, "interpreted"),
            "sql": engine.certain(db, "sql"),
        }
        if len(set(answers.values())) != 1:
            agree = False
        certain_count += int(answers["brute"])
    table.add_row(trials, certain_count, agree)
    return table


def timing_table(
    n_elements: int = 40,
    n_sets: Sequence[int] = (1, 2, 3, 4),
    sql_limit: int = 3,
    seed: int = 3,
) -> Table:
    """Rewriting evaluation time vs the polynomial Hall solver."""
    rng = random.Random(seed)
    table = Table(
        "E2c: q_Hall answer time on |S| = %d" % n_elements,
        ["ell", "certain", "t_hall(s)", "t_rewriting(s)", "t_sql(s)"],
    )
    for ell in n_sets:
        inst = random_instance(n_elements, ell, rng)
        db = scovering_to_database(inst)
        engine = CertaintyEngine(query_for(inst))
        hall_ans, t_hall = timed(lambda: not inst.solvable)
        rw_ans, t_rw = timed(engine.certain, db, "rewriting")
        assert hall_ans == rw_ans
        if ell <= sql_limit:
            sql_ans, t_sql = timed(engine.certain, db, "sql")
            assert sql_ans == rw_ans
            t_sql_txt = t_sql
        else:
            t_sql_txt = "parser limit"
        table.add_row(ell, rw_ans, t_hall, t_rw, t_sql_txt)
    table.add_note(
        "beyond ell = 3 the exponentially-sized rewriting overflows "
        "sqlite's expression parser stack — the paper's remark that the "
        "rewriting length is exponential in the query has a very "
        "concrete practical consequence."
    )
    return table


def run(seed: int = 2) -> List[Table]:
    """All E2 tables."""
    return [
        rewriting_growth_table(),
        agreement_table(seed=seed),
        timing_table(seed=seed + 1),
    ]
