"""E6 — Examples 4.5 / 6.11: constructed rewritings vs the paper's.

The paper displays the consistent FO rewriting of q3 (Example 4.5) and
of the Example 6.11 query in closed form.  This experiment hand-builds
those formulas with the FO AST and checks semantic equivalence with the
algorithmically constructed rewritings over random databases, using all
four evaluation paths.
"""

from __future__ import annotations

import random
from typing import List

from ..core.atoms import atom
from ..core.terms import Constant, Variable
from ..cqa.brute_force import is_certain_brute_force
from ..cqa.engine import CertaintyEngine
from ..db.sqlite_backend import run_sentence_sql
from ..fo.eval import evaluate
from ..fo.formula import (
    AtomF,
    Eq,
    Formula,
    implies,
    make_and,
    make_exists,
    make_forall,
    make_not,
)
from ..fo.stats import stats
from ..workloads.generators import random_small_database
from ..workloads.queries import q3, q_example611
from .harness import Table


def paper_rewriting_q3(constant: str = "c") -> Formula:
    """Example 4.5, verbatim:

    ∃x∃y P(x,y) ∧ ∀z (N(c,z) → ∃x (∃y P(x,y) ∧ ∀w (P(x,w) → w ≠ z))).
    """
    x, y, z, w = (Variable(n) for n in "xyzw")
    c = Constant(constant)
    p_xy = AtomF(atom("P", [x], [y]))
    p_xw = AtomF(atom("P", [x], [w]))
    n_cz = AtomF(atom("N", [c], [z]))
    inner = make_exists(
        [x],
        make_and([
            make_exists([y], p_xy),
            make_forall([w], implies(p_xw, make_not(Eq(w, z)))),
        ]),
    )
    return make_and([
        make_exists([x, y], p_xy),
        make_forall([z], implies(n_cz, inner)),
    ])


def paper_rewriting_611(constant: str = "c", value: str = "a") -> Formula:
    """Example 6.11, simplified form:

    ∃y P(y) ∧ ∀z (N(c,a,z,z) → ∃y (P(y) ∧ y ≠ z)).
    """
    y, z = Variable("y"), Variable("z")
    c, a = Constant(constant), Constant(value)
    p_y = AtomF(atom("P", [y]))
    n = AtomF(atom("N", [c], [a, z, z]))
    inner = make_exists([y], make_and([p_y, make_not(Eq(y, z))]))
    return make_and([
        make_exists([y], p_y),
        make_forall([z], implies(n, inner)),
    ])


def equivalence_table(trials: int = 60, seed: int = 8) -> Table:
    rng = random.Random(seed)
    table = Table(
        "E6: constructed rewriting vs paper's closed form",
        ["query", "trials", "constructed size", "paper size", "equivalent"],
    )
    from ..fo.equivalence import find_distinguisher

    for name, query, paper in [
        ("q3 (Ex 4.5)", q3(), paper_rewriting_q3()),
        ("Ex 6.11", q_example611(), paper_rewriting_611()),
    ]:
        engine = CertaintyEngine(query)
        # (a) randomized equivalence of the two formulas;
        distinguisher = find_distinguisher(
            engine.rewriting, paper, trials=trials, rng=rng)
        equivalent = distinguisher is None
        # (b) both must also match brute force and the SQL paths.
        for _ in range(trials // 3):
            db = random_small_database(query, rng, domain_size=3,
                                       facts_per_relation=4)
            answers = {
                evaluate(paper, db),
                run_sentence_sql(paper, db),
                engine.certain(db, "rewriting"),
                engine.certain(db, "sql"),
                is_certain_brute_force(query, db),
            }
            if len(answers) != 1:
                equivalent = False
        table.add_row(
            name, trials, stats(engine.rewriting).nodes,
            stats(paper).nodes, equivalent,
        )
    return table


def run(seed: int = 8) -> List[Table]:
    """All E6 tables."""
    return [equivalence_table(seed=seed)]
