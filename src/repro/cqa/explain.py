"""Explanations for certainty answers.

When CERTAINTY(q) is false, the definitive certificate is a *falsifying
repair*.  This module extracts that repair and renders it as a diff
against the database: for every inconsistent block, which fact the
repair kept and which it dropped.  When CERTAINTY(q) is true, the
explanation exhibits a satisfying valuation on a sample of repairs
(the rewriting itself is the complete certificate in the FO case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.query import Query
from ..core.terms import Variable
from ..db.database import Database
from ..db.repairs import sample_repairs
from ..db.satisfaction import satisfying_valuations
from .brute_force import find_falsifying_repair


@dataclass
class BlockChoice:
    """One block's resolution inside a repair."""

    relation: str
    key: Tuple
    kept: Tuple
    dropped: Tuple[Tuple, ...]

    def render(self) -> str:
        drops = ", ".join(repr(r) for r in self.dropped)
        return (f"{self.relation}{self.key!r}: kept {self.kept!r}, "
                f"dropped {drops}")


@dataclass
class UncertaintyExplanation:
    """Why q is NOT certain: a falsifying repair, as a block diff."""

    query: Query
    repair: Database
    choices: List[BlockChoice]

    def render(self) -> str:
        lines = [
            f"query {self.query} is NOT certain: "
            f"the following repair falsifies it."
        ]
        if not self.choices:
            lines.append("  (the database is consistent; it falsifies "
                         "the query directly)")
        for choice in self.choices:
            lines.append("  " + choice.render())
        return "\n".join(lines)


@dataclass
class CertaintyEvidence:
    """Evidence (not proof) for certainty: witnesses on sampled repairs."""

    query: Query
    sampled: int
    witnesses: List[Dict[Variable, object]]

    def render(self) -> str:
        lines = [
            f"query {self.query} held on all {self.sampled} sampled "
            f"repairs; example witnesses:"
        ]
        for w in self.witnesses[:3]:
            binding = ", ".join(
                f"{v.name}={value!r}" for v, value in sorted(
                    w.items(), key=lambda kv: kv[0].name)
            )
            lines.append(f"  {{{binding}}}")
        return "\n".join(lines)


def _block_choices(db: Database, repair: Database) -> List[BlockChoice]:
    choices = []
    for relation, key, rows in db.all_blocks():
        if len(rows) == 1:
            continue
        kept = [r for r in rows if repair.contains(relation, r)]
        dropped = tuple(sorted(
            (r for r in rows if not repair.contains(relation, r)), key=repr))
        if kept and dropped:
            choices.append(BlockChoice(relation, key, kept[0], dropped))
    return choices


def explain_uncertainty(
    query: Query, db: Database
) -> Optional[UncertaintyExplanation]:
    """A falsifying-repair certificate, or None when q is certain."""
    relevant = db.restrict(set(query.relations) & set(db.schemas))
    repair = find_falsifying_repair(query, db)
    if repair is None:
        return None
    return UncertaintyExplanation(
        query, repair, _block_choices(relevant, repair))


def certainty_evidence(
    query: Query,
    db: Database,
    samples: int = 25,
    rng: Optional[random.Random] = None,
) -> Optional[CertaintyEvidence]:
    """Witness valuations on sampled repairs, or None if a sampled
    repair falsifies the query (then q is definitively not certain)."""
    rng = rng or random.Random()
    relevant = db.restrict(set(query.relations) & set(db.schemas))
    witnesses = []
    for repair in sample_repairs(relevant, samples, rng):
        found = None
        for valuation in satisfying_valuations(query, repair):
            found = valuation
            break
        if found is None:
            return None
        witnesses.append(found)
    return CertaintyEvidence(query, samples, witnesses)


def explain(query: Query, db: Database, rng: Optional[random.Random] = None):
    """The appropriate explanation object for the instance.

    Returns an :class:`UncertaintyExplanation` when q is not certain
    (exact), else :class:`CertaintyEvidence` (sampled witnesses).
    """
    uncertainty = explain_uncertainty(query, db)
    if uncertainty is not None:
        return uncertainty
    evidence = certainty_evidence(query, db, rng=rng)
    assert evidence is not None, "brute force and sampling disagree"
    return evidence
