"""The possibility problem: is q true in SOME repair?

POSSIBILITY(q) is the existential dual of CERTAINTY(q).  For queries
without negated atoms it is trivial: a conjunctive query is true in
some repair iff it is true in the database itself (any witnessing facts
can be completed to a repair).  With negated atoms that shortcut is
unsound — the witnessing facts must be kept while the negated facts'
blocks must be steered away — so the general solver enumerates repairs.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.query import Query
from ..db.database import Database
from ..db.repairs import find_repair_where, sample_repairs
from ..db.satisfaction import satisfies


def _relevant(db: Database, query: Query) -> Database:
    keep = set(query.relations) & set(db.schemas)
    return db.restrict(keep)


def is_possible(query: Query, db: Database) -> bool:
    """POSSIBILITY(q): does some repair satisfy q?

    Uses the polynomial shortcut for negation-free queries and falls
    back to repair enumeration otherwise.
    """
    if not query.negatives and not query.diseqs:
        # Monotone case: db ⊨ q iff some repair ⊨ q.  (⇐) repairs are
        # subsets of db.  (⇒) extend the witnessing facts to a repair.
        return satisfies(db, query)
    return find_satisfying_repair(query, db) is not None


def find_satisfying_repair(query: Query, db: Database) -> Optional[Database]:
    """A repair satisfying q, or None (exact, exponential)."""
    return find_repair_where(
        _relevant(db, query), lambda repair: satisfies(repair, query)
    )


def is_possible_sampled(
    query: Query,
    db: Database,
    samples: int = 200,
    rng: Optional[random.Random] = None,
) -> bool:
    """One-sided Monte-Carlo: True is definitive (a satisfying repair
    was sampled), False only means none was found."""
    rng = rng or random.Random()
    relevant = _relevant(db, query)
    return any(
        satisfies(repair, query)
        for repair in sample_repairs(relevant, samples, rng)
    )
