"""Certainty by exhaustive repair enumeration.

The exact-but-exponential baseline: CERTAINTY(q) holds iff no repair
falsifies q.  Works for *every* query in sjfBCQ¬≠ — cyclic attack
graphs, non-weakly-guarded negation, anything — which makes it the
ground truth that all polynomial solvers are validated against.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.query import Query
from ..db.database import Database
from ..db.repairs import find_repair_where, iter_repairs, sample_repairs
from ..db.satisfaction import satisfies


def _relevant(db: Database, query: Query) -> Database:
    """Restrict to the query's relations: other blocks are irrelevant."""
    keep = set(query.relations) & set(db.schemas)
    return db.restrict(keep)


def find_falsifying_repair(query: Query, db: Database) -> Optional[Database]:
    """A repair where q fails, or None when q is certain."""
    return find_repair_where(
        _relevant(db, query), lambda repair: not satisfies(repair, query)
    )


def is_certain_brute_force(query: Query, db: Database) -> bool:
    """CERTAINTY(q) by enumerating rset(db) with early exit."""
    return find_falsifying_repair(query, db) is None


def is_certain_sampled(
    query: Query,
    db: Database,
    samples: int = 200,
    rng: Optional[random.Random] = None,
) -> bool:
    """A one-sided Monte-Carlo check: False is definitive (a falsifying
    repair was found), True only means no falsifying repair was sampled."""
    relevant = _relevant(db, query)
    for repair in sample_repairs(relevant, samples, rng):
        if not satisfies(repair, query):
            return False
    return True


def certainty_fraction(query: Query, db: Database) -> float:
    """The fraction of repairs satisfying q (exact, exponential).

    This is the normalized counting variant ♯CERTAINTY(q) mentioned in
    Section 2 (related work); useful in tests and ablations.
    """
    relevant = _relevant(db, query)
    total = 0
    good = 0
    for repair in iter_repairs(relevant):
        total += 1
        if satisfies(repair, query):
            good += 1
    return good / total if total else 1.0
