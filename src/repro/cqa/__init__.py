"""Consistent query answering: rewriting, interpreted and brute solvers."""

from .certain_answers import (
    OpenQuery,
    certain_answers,
    certain_answers_sql_query,
    cross_validate_answers,
    open_rewriting,
)
from .counting import (
    FractionEstimate,
    RepairCount,
    count_satisfying_repairs,
    estimate_satisfying_fraction,
)
from .brute_force import (
    certainty_fraction,
    find_falsifying_repair,
    is_certain_brute_force,
    is_certain_sampled,
)
from .engine import CertaintyEngine, CrossValidation, METHODS, certain
from .explain import (
    CertaintyEvidence,
    UncertaintyExplanation,
    certainty_evidence,
    explain,
    explain_uncertainty,
)
from .is_certain import CertaintyInterpreter, is_certain
from .possibility import (
    find_satisfying_repair,
    is_possible,
    is_possible_sampled,
)
from .rewriting import (
    NotInFO,
    Rewriter,
    RewritingError,
    RewritingStep,
    consistent_rewriting,
    has_consistent_rewriting,
    pick_eliminable_atom,
)

__all__ = [
    "CertaintyEngine",
    "CertaintyEvidence",
    "CertaintyInterpreter",
    "CrossValidation",
    "METHODS",
    "FractionEstimate",
    "NotInFO",
    "OpenQuery",
    "RepairCount",
    "Rewriter",
    "RewritingError",
    "RewritingStep",
    "UncertaintyExplanation",
    "certain",
    "certain_answers",
    "certain_answers_sql_query",
    "count_satisfying_repairs",
    "cross_validate_answers",
    "estimate_satisfying_fraction",
    "certainty_evidence",
    "certainty_fraction",
    "explain",
    "explain_uncertainty",
    "consistent_rewriting",
    "find_falsifying_repair",
    "find_satisfying_repair",
    "has_consistent_rewriting",
    "is_certain",
    "is_certain_brute_force",
    "is_certain_sampled",
    "is_possible",
    "is_possible_sampled",
    "open_rewriting",
    "pick_eliminable_atom",
]
