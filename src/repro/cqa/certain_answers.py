"""Certain answers for non-Boolean queries.

Section 1 of the paper: "The extension to queries with free variables
is easy, essentially because free variables can be treated as
constants."  A tuple c⃗ is a *certain answer* of q(x⃗) on **db** when
the Boolean query q_[x⃗↦c⃗] is true in every repair of **db**.

This module implements exactly that reduction, with three strategies:

``brute``
    Ground every candidate tuple and run brute-force certainty.
``rewriting``
    Build ONE consistent first-order rewriting φ(x⃗) with free
    variables (placeholder grounding, then re-opening), and evaluate it
    per candidate with the guarded Python evaluator.
``sql``
    Compile φ(x⃗) into a single SQL SELECT returning all certain
    answers at once — consistent query answering as one query over the
    dirty database.

The candidate space is the per-variable intersection of the column
values where each free variable occurs positively (complete, because a
repair is a subset of the database), falling back to the active domain
for variables with no positive occurrence.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.classify import Verdict, classify
from ..core.query import Query, QueryError
from ..core.terms import Constant, PlaceholderConstant, Variable
from ..db.database import Database
from ..db.sqlite_backend import create_tables, load_database
from ..fo.eval import Evaluator
from ..fo.formula import Formula, free_variables, schemas_of, substitute_terms
from ..fo.simplify import simplify_fixpoint
from ..fo.sql import SQLCompiler, decode_value
from .brute_force import is_certain_brute_force
from .rewriting import NotInFO, Rewriter


class OpenQuery:
    """A conjunctive query with designated free (answer) variables."""

    def __init__(self, query: Query, free: Sequence[Variable]):
        free = tuple(free)
        if len(set(free)) != len(free):
            raise QueryError("free variables must be distinct")
        missing = [v for v in free if v not in query.vars]
        if missing:
            raise QueryError(
                f"free variables not in the query: {[v.name for v in missing]}"
            )
        self.query = query
        self.free = free

    def grounded(self, values: Sequence) -> Query:
        """q_[x⃗ ↦ c⃗] for a candidate answer tuple."""
        mapping = {v: Constant(c) for v, c in zip(self.free, values)}
        return self.query.substitute(mapping)

    @property
    def boolean_form(self) -> Query:
        """The Boolean query obtained by freezing free variables.

        Classification must be performed on this form: treating the
        free variables as constants changes the attack graph, and it is
        this grounded query that Theorem 4.3 speaks about.
        """
        mapping = {v: PlaceholderConstant(v) for v in self.free}
        return self.query.substitute(mapping)

    @property
    def in_fo(self) -> bool:
        """Does every grounding admit a consistent FO rewriting?"""
        return classify(self.boolean_form).verdict is Verdict.IN_FO

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.free)
        return f"({names}) <- {self.query!r}"


def open_rewriting(open_query: OpenQuery, simplify: bool = True) -> Formula:
    """A consistent FO rewriting φ(x⃗) with the answer variables free.

    Built by grounding the free variables with placeholders, rewriting
    the resulting Boolean query, and re-opening the placeholders.
    """
    mapping = {v: PlaceholderConstant(v) for v in open_query.free}
    grounded = open_query.query.substitute(mapping)
    formula = Rewriter(grounded).rewrite(simplify=simplify)
    opened = substitute_terms(formula, {p: v for v, p in mapping.items()})
    return simplify_fixpoint(opened) if simplify else opened


def candidate_values(
    open_query: OpenQuery, db: Database
) -> List[Tuple]:
    """Per-variable candidate domains, combined to candidate tuples."""
    domains: List[List] = []
    for v in open_query.free:
        domain: Optional[Set] = None
        for p in open_query.query.positives:
            for i, term in enumerate(p.terms):
                if term == v:
                    column = (
                        {row[i] for row in db.facts(p.relation)}
                        if p.relation in db.schemas
                        else set()
                    )
                    domain = column if domain is None else domain & column
        if domain is None:
            domain = set(db.active_domain())
        domains.append(sorted(domain, key=repr))
    return list(itertools.product(*domains))


def certain_answers(
    open_query: OpenQuery,
    db: Database,
    method: str = "auto",
) -> FrozenSet[Tuple]:
    """All certain answers of q(x⃗) on db.

    ``auto`` picks ``sql`` when the grounded query is in FO, otherwise
    ``brute``.
    """
    if method == "auto":
        method = "sql" if open_query.in_fo else "brute"
    if method == "brute":
        return frozenset(
            c for c in candidate_values(open_query, db)
            if is_certain_brute_force(open_query.grounded(c), db)
        )
    if method == "rewriting":
        formula = open_rewriting(open_query)
        evaluator = Evaluator(formula, db)
        return frozenset(
            c for c in candidate_values(open_query, db)
            if evaluator.evaluate(dict(zip(open_query.free, c)))
        )
    if method == "sql":
        return _certain_answers_sql(open_query, db)
    raise ValueError(f"unknown method {method!r}")


def certain_answers_sql_query(open_query: OpenQuery, db: Database) -> str:
    """The single SQL SELECT returning every certain answer."""
    formula = open_rewriting(open_query)
    if free_variables(formula) - set(open_query.free):
        raise NotInFO("rewriting has unexpected free variables")
    schemas = dict(db.schemas)
    schemas.update(schemas_of(formula))
    compiler = SQLCompiler(formula, schemas)
    adom_cte = compiler.adom_cte()
    scope = {}
    from_items = []
    select_items = []
    for i, v in enumerate(open_query.free):
        alias = f"ans{i}"
        from_items.append(f"adom {alias}")
        scope[v] = f"{alias}.v"
        select_items.append(f"{alias}.v AS {v.name}")
    body = compiler.compile_expr(formula, scope)
    return (
        f"WITH adom(v) AS ({adom_cte})\n"
        f"SELECT DISTINCT {', '.join(select_items)}\n"
        f"FROM {', '.join(from_items)}\n"
        f"WHERE {body}"
    )


def _certain_answers_sql(open_query: OpenQuery, db: Database) -> FrozenSet[Tuple]:
    conn = load_database(db)
    try:
        formula = open_rewriting(open_query)
        needed = schemas_of(formula)
        missing = [s for name, s in needed.items() if name not in db.schemas]
        if missing:
            create_tables(conn, missing)
        sql = certain_answers_sql_query(open_query, db)
        rows = conn.execute(sql).fetchall()
        return frozenset(tuple(decode_value(v) for v in row) for row in rows)
    finally:
        conn.close()


def cross_validate_answers(
    open_query: OpenQuery, db: Database
) -> Dict[str, FrozenSet[Tuple]]:
    """Answers from every applicable strategy (tests assert agreement)."""
    out = {"brute": certain_answers(open_query, db, "brute")}
    if open_query.in_fo:
        out["rewriting"] = certain_answers(open_query, db, "rewriting")
        out["sql"] = certain_answers(open_query, db, "sql")
    return out
