"""Certain answers for non-Boolean queries.

Section 1 of the paper: "The extension to queries with free variables
is easy, essentially because free variables can be treated as
constants."  A tuple c⃗ is a *certain answer* of q(x⃗) on **db** when
the Boolean query q_[x⃗↦c⃗] is true in every repair of **db**.

This module implements exactly that reduction, with four strategies:

``brute``
    Ground every candidate tuple and run brute-force certainty.
``rewriting``
    Build ONE consistent first-order rewriting φ(x⃗) with free
    variables (placeholder grounding, then re-opening), and evaluate it
    per candidate with the guarded Python evaluator.
``compiled``
    Lower φ(x⃗) to a set-at-a-time relational plan and return every
    certain answer from a single plan execution — no per-candidate
    loop at all.
``sql``
    Compile φ(x⃗) into a single SQL SELECT returning all certain
    answers at once — consistent query answering as one query over the
    dirty database.
``parallel``
    Split the database into block-preserving shards and run the
    compiled plan on every shard in a forked worker pool
    (:mod:`repro.parallel`); falls back to ``compiled`` in-process
    whenever sharding cannot help (Boolean query, tiny database,
    ``jobs=1``, ...).
``columnar``
    Execute the same compiled plan with the vectorized batch executor
    (:mod:`repro.columnar`): dictionary-encoded int columns and batch
    hash joins over fused int keys.  ``auto`` upgrades ``compiled`` to
    ``columnar`` when :func:`repro.columnar.prefer_columnar` — database
    size plus the cost model's plan estimate — says batching pays, and
    to ``sql`` first when :func:`repro.storage.pushdown.prefer_sql`
    says a persistent store's sqlite mirror should take the query
    (mirror-backed database, Adom*-free plan, ``REPRO_SQL_MIN_FACTS``
    reached).

The candidate space is enumerated from rows of the positive atoms
(complete, because a repair is a subset of the database): free
variables covered by a common atom are projected jointly from its rows,
and only variables with no positive occurrence fall back to the active
domain.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.classify import Verdict, classify
from ..core.query import Query, QueryError
from ..core.terms import Constant, PlaceholderConstant, Variable, is_variable
from ..db.database import Database
from ..db.sqlite_backend import create_tables, load_database
from ..fo.compile import plan_cache
from ..fo.eval import Evaluator
from ..fo.formula import (
    And,
    AtomF,
    Exists,
    Formula,
    free_variables,
    make_and,
    make_exists,
    schemas_of,
    substitute_terms,
)
from ..fo.simplify import simplify_fixpoint
from ..fo.sql import SQLCompiler, decode_value
from ..obs.options import (
    _UNSET,
    close_tracer as _close_tracer,
    merge_legacy_options,
    open_tracer as _open_tracer,
)
from .brute_force import is_certain_brute_force
from .is_certain import is_certain
from .rewriting import NotInFO, Rewriter


class OpenQuery:
    """A conjunctive query with designated free (answer) variables."""

    def __init__(self, query: Query, free: Sequence[Variable]):
        free = tuple(free)
        if len(set(free)) != len(free):
            raise QueryError("free variables must be distinct")
        missing = [v for v in free if v not in query.vars]
        if missing:
            raise QueryError(
                f"free variables not in the query: {[v.name for v in missing]}"
            )
        self.query = query
        self.free = free

    def grounded(self, values: Sequence) -> Query:
        """q_[x⃗ ↦ c⃗] for a candidate answer tuple."""
        mapping = {v: Constant(c) for v, c in zip(self.free, values)}
        return self.query.substitute(mapping)

    @property
    def boolean_form(self) -> Query:
        """The Boolean query obtained by freezing free variables.

        Classification must be performed on this form: treating the
        free variables as constants changes the attack graph, and it is
        this grounded query that Theorem 4.3 speaks about.
        """
        mapping = {v: PlaceholderConstant(v) for v in self.free}
        return self.query.substitute(mapping)

    @property
    def in_fo(self) -> bool:
        """Does every grounding admit a consistent FO rewriting?"""
        return classify(self.boolean_form).verdict is Verdict.IN_FO

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.free)
        return f"({names}) <- {self.query!r}"


@lru_cache(maxsize=512)
def _open_rewriting(
    query: Query, free: Tuple[Variable, ...], simplify: bool
) -> Formula:
    mapping = {v: PlaceholderConstant(v) for v in free}
    grounded = query.substitute(mapping)
    formula = Rewriter(grounded).rewrite(simplify=simplify)
    opened = substitute_terms(formula, {p: v for v, p in mapping.items()})
    return simplify_fixpoint(opened) if simplify else opened


def open_rewriting(open_query: OpenQuery, simplify: bool = True) -> Formula:
    """A consistent FO rewriting φ(x⃗) with the answer variables free.

    Built by grounding the free variables with placeholders, rewriting
    the resulting Boolean query, and re-opening the placeholders.
    Memoized on (query, free variables): the rewriting is a function of
    the query alone, and callers re-derive it per database.
    """
    return _open_rewriting(open_query.query, open_query.free, simplify)


def _generator_vars(formula: Formula) -> FrozenSet[Variable]:
    """Free variables the plan lowering can enumerate from rows.

    Walks the conjunctive skeleton (And / Exists) and collects variables
    of positive atoms found there — exactly the conjuncts ``_lower_and``
    turns into scans.  Atoms under Or, Not, or Forall do not generate.
    """
    if isinstance(formula, AtomF):
        return frozenset(formula.atom.vars)
    if isinstance(formula, Exists):
        return _generator_vars(formula.sub) - set(formula.vars)
    if isinstance(formula, And):
        out: FrozenSet[Variable] = frozenset()
        for sub in formula.subs:
            out |= _generator_vars(sub)
        return out
    return frozenset()


@lru_cache(maxsize=512)
def _guarded_open_rewriting_cached(
    query: Query, free: Tuple[Variable, ...]
) -> Formula:
    formula = _open_rewriting(query, free, True)
    unguarded = set(free) - _generator_vars(formula)
    guards: List[Formula] = []
    while unguarded:
        best = max(
            query.positives,
            key=lambda p: len(p.vars & unguarded),
            default=None,
        )
        if best is None or not best.vars & unguarded:
            break
        other = sorted(best.vars - set(free))
        guards.append(make_exists(other, AtomF(best)))
        unguarded -= best.vars
    if not guards:
        return formula
    return make_and(guards + [formula])


def _guarded_open_rewriting(open_query: OpenQuery) -> Formula:
    """φ(x⃗) conjoined with implied positive-atom guards where needed.

    A certain answer satisfies every positive atom of q in the database
    itself (a repair is a subset of db), so ``exists ū P(x̄, ū)`` is
    implied by φ for every positive atom P touching answer variables.
    Conjoining these guards is an equivalence — and it hands the plan
    lowering generators that cover the answer variables, so the plan
    enumerates them from rows instead of the active domain.  Guards are
    added only for answer variables the rewriting does not already
    generate positively, keeping the plan free of duplicate scans.
    """
    return _guarded_open_rewriting_cached(open_query.query, open_query.free)


def _consistent_rows(atom: Atom, db: Database) -> Sequence[Tuple]:
    """Rows of the atom's relation that match its constants and agree on
    its repeated variables."""
    if atom.relation not in db.schemas:
        return ()
    bindings: Dict[int, object] = {}
    first_pos: Dict[Variable, int] = {}
    checks: List[Tuple[int, int]] = []
    for i, term in enumerate(atom.terms):
        if is_variable(term):
            if term in first_pos:
                checks.append((first_pos[term], i))
            else:
                first_pos[term] = i
        else:
            bindings[i] = term.value
    rows = db.lookup(atom.relation, bindings)
    if not checks:
        return tuple(rows)
    return tuple(
        row for row in rows if all(row[a] == row[b] for a, b in checks)
    )


def candidate_values(
    open_query: OpenQuery, db: Database
) -> List[Tuple]:
    """Candidate answer tuples, enumerated from rows of positive atoms.

    Complete because a repair is a subset of the database: any certain
    answer makes every positive atom of q match an actual row.  Atoms
    are chosen greedily to cover as many free variables as possible
    (tie-break: fewest rows); variables assigned to the same atom are
    projected *jointly* from its rows, so co-occurring variables never
    form a cross product, and only variables with no positive
    occurrence fall back to the full active domain.
    """
    free = open_query.free
    if not free:
        return [()]
    positives = tuple(open_query.query.positives)
    sizes = [
        len(db.facts(p.relation)) if p.relation in db.schemas else 0
        for p in positives
    ]
    groups: Dict[int, List[int]] = {}  # atom index -> indexes into free
    unguarded: List[int] = []
    uncovered = list(range(len(free)))
    while uncovered:
        best: Optional[int] = None
        best_score: Tuple[int, int] = (0, 0)
        for i, p in enumerate(positives):
            covers = sum(1 for j in uncovered if free[j] in p.vars)
            score = (covers, -sizes[i])
            if covers and (best is None or score > best_score):
                best, best_score = i, score
        if best is None:
            unguarded.extend(uncovered)
            break
        groups[best] = [j for j in uncovered if free[j] in positives[best].vars]
        uncovered = [j for j in uncovered if free[j] not in positives[best].vars]
    # Each factor: (free-variable indexes, their joint value tuples).
    factors: List[Tuple[List[int], List[Tuple]]] = []
    for i, members in sorted(groups.items()):
        atom = positives[i]
        positions = [
            next(k for k, t in enumerate(atom.terms) if t == free[j])
            for j in members
        ]
        projected = {
            tuple(row[k] for k in positions)
            for row in _consistent_rows(atom, db)
        }
        factors.append((members, sorted(projected, key=repr)))
    if unguarded:
        adom = sorted(db.active_domain(), key=repr)
        for j in unguarded:
            factors.append(([j], [(value,) for value in adom]))
    out: List[Tuple] = []
    for combo in itertools.product(*(values for _, values in factors)):
        tup: List = [None] * len(free)
        for (members, _), values in zip(factors, combo):
            for j, value in zip(members, values):
                tup[j] = value
        out.append(tuple(tup))
    return out


def certain_answers(
    open_query: OpenQuery,
    db: Database,
    options=None,
    *,
    tracer=None,
    method=_UNSET,
    jobs=_UNSET,
    config=_UNSET,
) -> FrozenSet[Tuple]:
    """All certain answers of q(x⃗) on db.

    ``options`` is an :class:`repro.obs.ExecutionOptions` — or a bare
    method string as shorthand, or its strict ``dict`` wire form (the
    body of a ``repro serve`` request).  ``auto`` picks ``compiled``
    when the grounded query is in FO, otherwise ``brute``; the
    ``jobs`` field sets the worker count of the ``parallel`` method
    (default: the CPU count, capped by ``max_workers``) and — as in the
    CLI — upgrades ``auto`` to ``parallel``.  Serial strategies reject
    it at :class:`~repro.obs.ExecutionOptions` construction: they have
    nothing to parallelize.

    ``tracer`` (a :class:`repro.obs.Tracer`) records phase spans and,
    for the ``compiled``/``parallel`` methods, a per-operator
    :class:`repro.obs.PlanProfile` attached via ``tracer.add_profile``;
    without an explicit tracer, the options' ``trace`` / ``trace_file``
    fields create (and flush) one.  Tracing never changes the answers —
    the parity tests in ``tests/test_obs.py`` pin that down for every
    method.

    The ``method=`` / ``jobs=`` / ``config=`` keywords are deprecated
    shims that fold into ``options`` with a :class:`DeprecationWarning`
    (an *error* for repro-internal callers); see ``docs/SERVE.md`` for
    the migration table.
    """
    opts = merge_legacy_options(
        options, where="certain_answers",
        method=method, jobs=jobs, config=config,
    )
    tracer, own = _open_tracer(opts, tracer)
    try:
        return _certain_answers(open_query, db, opts, tracer)
    finally:
        _close_tracer(opts, tracer, own)


def _certain_answers(
    open_query: OpenQuery, db: Database, opts, tracer
) -> FrozenSet[Tuple]:
    from ..obs.trace import NULL_TRACER

    t = tracer if tracer is not None else NULL_TRACER
    method = opts.resolved_method
    run_config = opts.run_config()
    if method == "auto":
        if open_query.in_fo:
            method = "compiled"
            from ..columnar import prefer_columnar
            from ..storage.pushdown import prefer_sql

            compiled = plan_cache.get_or_compile(
                _guarded_open_rewriting(open_query), db, open_query.free
            )
            if prefer_sql(compiled, db, config=run_config):
                method = "sql"
            elif prefer_columnar(compiled, db, config=run_config):
                method = "columnar"
        else:
            method = "brute"
    if method == "parallel":
        from ..parallel import parallel_certain_answers

        with t.span("certain-answers", method=method):
            return parallel_certain_answers(
                open_query, db, jobs=opts.jobs, config=run_config,
                tracer=tracer if t.enabled else None,
            )
    if method == "brute":
        with t.span("certain-answers", method=method) as span:
            candidates = candidate_values(open_query, db)
            span.count("candidates", len(candidates))
            return frozenset(
                c for c in candidates
                if is_certain_brute_force(open_query.grounded(c), db)
            )
    if method == "interpreted":
        with t.span("certain-answers", method=method) as span:
            candidates = candidate_values(open_query, db)
            span.count("candidates", len(candidates))
            return frozenset(
                c for c in candidates
                if is_certain(open_query.grounded(c), db)
            )
    if method == "rewriting":
        with t.span("certain-answers", method=method) as span:
            with t.span("rewrite"):
                formula = open_rewriting(open_query)
            evaluator = Evaluator(formula, db)
            candidates = candidate_values(open_query, db)
            span.count("candidates", len(candidates))
            return frozenset(
                c for c in candidates
                if evaluator.evaluate(dict(zip(open_query.free, c)))
            )
    if method == "compiled":
        if not t.enabled:
            formula = _guarded_open_rewriting(open_query)
            compiled = plan_cache.get_or_compile(formula, db, open_query.free)
            return compiled.rows(db)
        from ..obs.profile import PlanProfile

        with t.span("certain-answers", method=method):
            with t.span("rewrite-and-compile"):
                formula = _guarded_open_rewriting(open_query)
                compiled = plan_cache.get_or_compile(
                    formula, db, open_query.free
                )
            profile = PlanProfile()
            with t.span("execute") as span:
                rows = compiled.rows(db, profile=profile)
                span.count("rows_out", len(rows))
            t.add_profile(compiled.plan, profile, method=method,
                          phase="execute")
            return rows
    if method == "columnar":
        from ..columnar import columnar_rows

        if not t.enabled:
            formula = _guarded_open_rewriting(open_query)
            compiled = plan_cache.get_or_compile(formula, db, open_query.free)
            return columnar_rows(compiled, db)
        from ..obs.profile import PlanProfile

        with t.span("certain-answers", method=method):
            with t.span("rewrite-and-compile"):
                formula = _guarded_open_rewriting(open_query)
                compiled = plan_cache.get_or_compile(
                    formula, db, open_query.free
                )
            profile = PlanProfile()
            with t.span("execute") as span:
                rows = columnar_rows(compiled, db, profile=profile)
                span.count("rows_out", len(rows))
            t.add_profile(compiled.plan, profile, method=method,
                          phase="execute")
            return rows
    if method == "sql":
        from ..storage.pushdown import count_legacy_sql, native_sql_answers

        with t.span("certain-answers", method=method):
            # A persistent store runs the same guarded compiled plan the
            # in-memory executor would, translated to one SELECT inside
            # its integer-encoded mirror; answers come back as columnar
            # code batches, never per-row decoded tuples.  Off-store (or
            # for an untranslatable plan) the legacy formula-SQL path
            # loads a fresh in-memory connection per call.
            if open_query.in_fo:
                formula = _guarded_open_rewriting(open_query)
                compiled = plan_cache.get_or_compile(
                    formula, db, open_query.free)
                rows = native_sql_answers(compiled, db)
                if rows is not None:
                    return rows
            count_legacy_sql()
            return _certain_answers_sql(open_query, db)
    raise ValueError(f"unknown method {method!r}")


def certain_answers_sql_query(open_query: OpenQuery, db: Database) -> str:
    """The single SQL SELECT returning every certain answer."""
    formula = open_rewriting(open_query)
    if free_variables(formula) - set(open_query.free):
        raise NotInFO("rewriting has unexpected free variables")
    schemas = dict(db.schemas)
    schemas.update(schemas_of(formula))
    compiler = SQLCompiler(formula, schemas)
    adom_cte = compiler.adom_cte()
    scope = {}
    from_items = []
    select_items = []
    for i, v in enumerate(open_query.free):
        alias = f"ans{i}"
        from_items.append(f"adom {alias}")
        scope[v] = f"{alias}.v"
        select_items.append(f"{alias}.v AS {v.name}")
    body = compiler.compile_expr(formula, scope)
    return (
        f"WITH adom(v) AS ({adom_cte})\n"
        f"SELECT DISTINCT {', '.join(select_items)}\n"
        f"FROM {', '.join(from_items)}\n"
        f"WHERE {body}"
    )


def _certain_answers_sql(
    open_query: OpenQuery, db: Database, conn=None
) -> FrozenSet[Tuple]:
    """Run the single-SELECT form, on ``conn`` when a persistent
    store's mirror supplies one (kept open), else on a freshly loaded
    in-memory connection (closed afterwards)."""
    own_conn = conn is None
    conn = load_database(db) if conn is None else conn
    try:
        formula = open_rewriting(open_query)
        needed = schemas_of(formula)
        missing = [s for name, s in needed.items() if name not in db.schemas]
        if missing:
            create_tables(conn, missing)
        sql = certain_answers_sql_query(open_query, db)
        rows = conn.execute(sql).fetchall()
        return frozenset(tuple(decode_value(v) for v in row) for row in rows)
    finally:
        if own_conn:
            conn.close()


def cross_validate_answers(
    open_query: OpenQuery, db: Database, parallel_jobs: int = 0
) -> Dict[str, FrozenSet[Tuple]]:
    """Answers from every applicable strategy (tests assert agreement).

    ``parallel_jobs > 0`` additionally runs the sharded parallel path
    (both backends: tuple and columnar) with that worker count and no
    size threshold, so even tiny test databases exercise real
    partitioning and merging.
    """
    out = {"brute": certain_answers(open_query, db, "brute")}
    if open_query.in_fo:
        out["interpreted"] = certain_answers(open_query, db, "interpreted")
        out["rewriting"] = certain_answers(open_query, db, "rewriting")
        out["compiled"] = certain_answers(open_query, db, "compiled")
        out["sql"] = certain_answers(open_query, db, "sql")
        out["columnar"] = certain_answers(open_query, db, "columnar")
        if parallel_jobs > 0:
            from ..parallel import parallel_certain_answers

            out["parallel"] = parallel_certain_answers(
                open_query, db, jobs=parallel_jobs, min_facts=0,
                shard_factor=1,
            )
            out["parallel-columnar"] = parallel_certain_answers(
                open_query, db, jobs=parallel_jobs, min_facts=0,
                shard_factor=1, backend="columnar",
            )
    return out
