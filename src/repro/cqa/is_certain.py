"""Algorithm 1 interpreted directly against a database.

This is the same recursion as the rewriting construction of Lemma 6.1,
but executed with the concrete database at hand instead of emitting a
formula.  It provides an independent FO-data-complexity implementation
of CERTAINTY(q) that the test suite cross-validates against both the
compiled rewriting and brute-force repair enumeration.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.classify import Verdict, classify
from ..core.query import Diseq, Query
from ..core.terms import Constant, Variable, is_variable
from ..db.database import Database
from ..db.satisfaction import satisfies
from .rewriting import NotInFO, pick_eliminable_atom


def _key_pattern_valuations(
    atom_obj: Atom, db: Database
) -> Iterator[Dict[Variable, Constant]]:
    """Valuations over key(F) unifying F's key pattern with a block key
    of F's relation.  Complete for positive F: a repair can only contain
    facts of db, so θ(key(F)) must be an existing block key."""
    if atom_obj.relation not in db.schemas:
        return
    seen = set()
    schema = atom_obj.schema
    for row in db.facts(atom_obj.relation):
        key = schema.key_of(row)
        if key in seen:
            continue
        seen.add(key)
        env: Dict[Variable, Constant] = {}
        ok = True
        for term, value in zip(atom_obj.key_terms, key):
            if is_variable(term):
                bound = env.get(term)
                if bound is None:
                    env[term] = Constant(value)
                elif bound.value != value:
                    ok = False
                    break
            elif term.value != value:
                ok = False
                break
        if ok:
            yield env


def _candidate_values(var: Variable, q: Query, db: Database) -> FrozenSet:
    """Values *var* can take in any satisfying valuation: the
    intersection, over positive atoms containing it, of the column
    values at its positions.  Complete because every satisfying
    valuation embeds the positive atoms into the (sub)database."""
    candidate: Optional[set] = None
    for p in q.positives:
        for i, term in enumerate(p.terms):
            if term == var:
                column = {row[i] for row in db.facts(p.relation)} \
                    if p.relation in db.schemas else set()
                candidate = column if candidate is None else candidate & column
    if candidate is None:
        # var occurs in no positive atom: fall back to the active domain.
        candidate = set(db.active_domain())
    return frozenset(candidate)


def _adom_valuations(
    variables: List[Variable], q: Query, db: Database
) -> Iterator[Dict[Variable, Constant]]:
    domains = [sorted(_candidate_values(v, q, db), key=repr) for v in variables]
    for combo in itertools.product(*domains):
        yield {v: Constant(c) for v, c in zip(variables, combo)}


def _ground_row(atom_obj: Atom) -> Tuple:
    return tuple(t.value for t in atom_obj.terms)


class CertaintyInterpreter:
    """Runs Algorithm 1 for one (query, database) pair."""

    def __init__(self, query: Query, db: Database, memoize: bool = True):
        verdict = classify(query)
        if verdict.verdict is not Verdict.IN_FO:
            raise NotInFO(
                f"Algorithm 1 requires an acyclic attack graph with "
                f"weakly-guarded negation: {verdict.reason}"
            )
        self.db = db
        # The recursion grounds the same subquery once per block fact;
        # memoizing on the (hashable) query avoids recomputing shared
        # subproblems.  The database is fixed per interpreter.
        self.memoize = memoize
        self._cache: Dict[Query, bool] = {}

    def run(self, q: Query) -> bool:
        """IsCertain(q, db)."""
        if not self.memoize:
            return self._run_uncached(q)
        cached = self._cache.get(q)
        if cached is not None:
            return cached
        result = self._run_uncached(q)
        self._cache[q] = result
        return result

    def _run_uncached(self, q: Query) -> bool:
        if q.all_atoms_all_key:
            return self._base_case(q)
        f = pick_eliminable_atom(q)
        if f.key_vars:
            return self._reify(q, f)
        if q.is_negative(f):
            return self._eliminate_negative(q, f)
        return self._eliminate_positive(q, f)

    # ------------------------------------------------------------------

    def _base_case(self, q: Query) -> bool:
        # All relations all-key: the database restricted to them is its
        # own unique repair, so certainty is plain satisfaction.
        return satisfies(self.db, q)

    def _reify(self, q: Query, f: Atom) -> bool:
        key_vars = sorted(f.key_vars)
        if q.is_positive(f):
            valuations = _key_pattern_valuations(f, self.db)
        else:
            valuations = _adom_valuations(key_vars, q, self.db)
        return any(self.run(q.substitute(env)) for env in valuations)

    def _eliminate_negative(self, q: Query, f: Atom) -> bool:
        q1 = q.without(f)
        if not self.run(q1):
            return False
        if not f.vars:
            return not (
                f.relation in self.db.schemas
                and self.db.contains(f.relation, _ground_row(f))
            )
        key_values = tuple(t.value for t in f.key_terms)
        block = (
            self.db.block_of(f.relation, key_values)
            if f.relation in self.db.schemas
            else frozenset()
        )
        k = f.schema.key_size
        for row in block:
            pairs = tuple(
                (Constant(value), term)
                for value, term in zip(row[k:], f.value_terms)
            )
            if not self.run(q1.with_diseq(Diseq(pairs))):
                return False
        return True

    def _eliminate_positive(self, q: Query, f: Atom) -> bool:
        q1 = q.without(f)
        if f.relation not in self.db.schemas:
            return False
        key_values = tuple(t.value for t in f.key_terms)
        block = self.db.block_of(f.relation, key_values)
        if not block:
            return False
        k = f.schema.key_size
        for row in block:
            env: Dict[Variable, Constant] = {}
            ok = True
            for term, value in zip(f.value_terms, row[k:]):
                if is_variable(term):
                    bound = env.get(term)
                    if bound is None:
                        env[term] = Constant(value)
                    elif bound.value != value:
                        ok = False
                        break
                elif term.value != value:
                    ok = False
                    break
            if not ok:
                # Some fact of the block does not match F's value
                # pattern: no valuation can cover it (Lemma 6.1, q⁺ case).
                return False
            if not self.run(q1.substitute(env)):
                return False
        return True


def is_certain(query: Query, db: Database) -> bool:
    """CERTAINTY(q) on db, by the interpreted Algorithm 1.

    Requires q to satisfy the conditions of Theorem 4.3(2); raises
    :class:`NotInFO` otherwise.
    """
    return CertaintyInterpreter(query, db).run(query)
