"""High-level certainty engine: one entry point, five interchangeable
solving strategies, and a cross-validation helper.

Strategies
----------
``brute``
    Exhaustive repair enumeration (always applicable, exponential).
``interpreted``
    Algorithm 1 run directly on the database (FO data complexity;
    requires an acyclic attack graph and weakly-guarded negation).
``rewriting``
    Compile the consistent FO rewriting once, evaluate with the Python
    active-domain evaluator (tuple-at-a-time).
``compiled``
    Lower the rewriting to a set-at-a-time relational plan
    (:mod:`repro.fo.compile`), cached in the process-wide plan cache;
    the default fast path for queries in FO.
``sql``
    Compile the rewriting to a single SQL query, run it on sqlite —
    against the delta-maintained mirror of a persistent store
    (:mod:`repro.storage.pushdown`), or by loading a plain in-memory
    database into a fresh connection.
``parallel``
    Shard the database block-by-block and run the compiled plan in a
    forked worker pool (:mod:`repro.parallel`).  Only the open
    (free-variable) form decomposes over shards, so for Boolean
    certainty this method is a documented serial fallback to
    ``compiled`` — counted in :meth:`CertaintyEngine.parallel_stats`.
``columnar``
    Run the same compiled plan through the vectorized batch executor
    (:mod:`repro.columnar`): dictionary-encoded int columns, batch
    hash joins, selection vectors.  Boolean certainty keeps the row
    executor's probe-mode short-circuit (a documented delegation,
    counted in the columnar stats).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.classify import Classification, Verdict, classify
from ..core.query import Query
from ..db.database import Database
from ..db.sqlite_backend import run_sentence_sql
from ..fo.compile import plan_cache
from ..fo.eval import Evaluator
from ..fo.formula import Formula
from ..lint import LintResult, lint_query
from ..obs.options import (
    _UNSET,
    close_tracer as _close_tracer,
    merge_legacy_options,
    open_tracer as _open_tracer,
)
from .brute_force import is_certain_brute_force
from .is_certain import is_certain
from .rewriting import NotInFO, consistent_rewriting

METHODS = ("brute", "interpreted", "rewriting", "compiled", "sql",
           "parallel", "columnar")


@dataclass
class CrossValidation:
    """Results of running every applicable strategy on one instance."""

    results: Dict[str, bool]

    @property
    def consistent(self) -> bool:
        """Did all strategies agree?"""
        return len(set(self.results.values())) <= 1

    @property
    def answer(self) -> bool:
        """The agreed answer (raises if strategies disagree)."""
        if not self.consistent:
            raise AssertionError(f"solvers disagree: {self.results}")
        return next(iter(self.results.values()))


class CertaintyEngine:
    """Answers CERTAINTY(q) for one fixed query on many databases.

    The engine classifies the query once, constructs (and caches) the
    rewriting when one exists, and dispatches per call.
    """

    def __init__(self, query: Query):
        self.query = query
        self.classification: Classification = classify(query)
        self.lint: LintResult = lint_query(query)
        self._rewriting: Optional[Formula] = None

    @property
    def in_fo(self) -> bool:
        """Does the query admit a consistent FO rewriting (Thm 4.3)?"""
        return self.classification.verdict is Verdict.IN_FO

    def _require_fo(self, method: str) -> None:
        """Fail fast with the coded lint diagnostics when an FO-only
        method is requested for a query outside Theorem 4.3(2)."""
        if self.in_fo:
            return
        detail = "; ".join(d.one_line() for d in self.lint.errors)
        raise NotInFO(
            f"method {method!r} needs a consistent FO rewriting, which "
            f"Theorem 4.3 withholds for this query: "
            f"{detail or self.classification.reason}",
            diagnostics=self.lint.errors,
        )

    @property
    def rewriting(self) -> Formula:
        """The consistent FO rewriting (constructed lazily, cached)."""
        if self._rewriting is None:
            self._rewriting = consistent_rewriting(self.query)
        return self._rewriting

    def certain(self, db: Database, options=None, *, tracer=None,
                method=_UNSET, jobs=_UNSET, config=_UNSET) -> bool:
        """Is q true in every repair of db?

        ``options`` is an :class:`repro.obs.ExecutionOptions` (or a
        bare method string as shorthand, or its strict ``dict`` wire
        form — the body of a ``repro serve`` request).  ``"auto"`` uses
        the compiled plan when the query is in FO and falls back to
        brute force otherwise; on a mirror-backed persistent store
        holding at least ``sql_min_facts`` facts (and an Adom*-free
        plan) it pushes down to SQL instead
        (:func:`repro.storage.pushdown.prefer_sql`).  ``"parallel"``
        accepts the ``jobs`` field for symmetry with
        :meth:`certain_answers`, but Boolean certainty does not
        decompose over shards (see ``docs/PERFORMANCE.md``), so it runs
        the serial compiled plan and counts a ``boolean`` fallback in
        the parallel metrics.

        ``tracer`` (a :class:`repro.obs.Tracer`) records method spans
        and — for ``compiled`` — a per-operator probe profile; it never
        changes the answer.  Without an explicit tracer, the options'
        ``trace`` / ``trace_file`` fields create (and flush) one.

        The ``method=`` / ``jobs=`` / ``config=`` keywords are
        deprecated shims that fold into ``options`` with a
        :class:`DeprecationWarning` (an *error* for repro-internal
        callers); see ``docs/SERVE.md`` for the migration table.
        """
        opts = merge_legacy_options(
            options, where="CertaintyEngine.certain",
            method=method, jobs=jobs, config=config,
        )
        tracer, own = _open_tracer(opts, tracer)
        try:
            return self._certain(db, opts, tracer)
        finally:
            _close_tracer(opts, tracer, own)

    def _certain(self, db: Database, opts, tracer) -> bool:
        from ..obs.trace import NULL_TRACER

        t = tracer if tracer is not None else NULL_TRACER
        method = opts.resolved_method
        run_config = opts.run_config()
        if method == "auto":
            if self.in_fo:
                method = "compiled"
                from ..storage.pushdown import prefer_sql

                compiled = plan_cache.get_or_compile(self.rewriting, db)
                if prefer_sql(compiled, db, config=run_config):
                    method = "sql"
            else:
                method = "brute"
        if method == "brute":
            with t.span("certain", method=method):
                return is_certain_brute_force(self.query, db)
        if method == "interpreted":
            self._require_fo(method)
            with t.span("certain", method=method):
                return is_certain(self.query, db)
        if method == "rewriting":
            self._require_fo(method)
            with t.span("certain", method=method):
                return Evaluator(self.rewriting, db).evaluate()
        if method == "compiled":
            self._require_fo(method)
            if not t.enabled:
                return plan_cache.get_or_compile(self.rewriting, db).holds(db)
            from ..obs.profile import PlanProfile

            with t.span("certain", method=method):
                with t.span("rewrite-and-compile"):
                    compiled = plan_cache.get_or_compile(self.rewriting, db)
                profile = PlanProfile()
                with t.span("probe") as span:
                    result = compiled.holds(db, profile=profile)
                    span.count("holds", int(result))
                t.add_profile(compiled.plan, profile, method=method,
                              phase="probe")
                return result
        if method == "sql":
            self._require_fo(method)
            from ..storage.pushdown import count_legacy_sql, native_sql_holds

            with t.span("certain", method=method):
                # A persistent store runs the compiled plan natively
                # inside its integer-encoded sqlite mirror (no per-query
                # load, no row shuttling); a plain in-memory database —
                # or a plan the SQL compiler cannot translate — keeps
                # the legacy formula-SQL load-and-run path.
                compiled = plan_cache.get_or_compile(self.rewriting, db)
                result = native_sql_holds(compiled, db)
                if result is not None:
                    return result
                count_legacy_sql()
                return run_sentence_sql(self.rewriting, db)
        if method == "columnar":
            self._require_fo(method)
            from ..columnar import columnar_holds

            if not t.enabled:
                return columnar_holds(
                    plan_cache.get_or_compile(self.rewriting, db), db)
            from ..obs.profile import PlanProfile

            with t.span("certain", method=method):
                with t.span("rewrite-and-compile"):
                    compiled = plan_cache.get_or_compile(self.rewriting, db)
                profile = PlanProfile()
                with t.span("probe") as span:
                    result = columnar_holds(compiled, db, profile=profile)
                    span.count("holds", int(result))
                t.add_profile(compiled.plan, profile, method=method,
                              phase="probe")
                return result
        if method == "parallel":
            self._require_fo(method)
            return bool(self.certain_answers(
                db, (), opts.replace(method="parallel"), tracer=tracer))
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")

    def certain_answers(self, db: Database, free=(), options=None, *,
                        tracer=None, method=_UNSET, jobs=_UNSET,
                        config=_UNSET):
        """All certain answers of q(x⃗) on db, for answer variables
        ``free``.

        Thin wrapper around :func:`repro.cqa.certain_answers.certain_answers`
        reusing this engine's query; ``options`` is an
        :class:`repro.obs.ExecutionOptions` (or a method string), where
        ``method="parallel"`` with ``jobs=N`` runs the sharded
        worker-pool path.  The ``method=`` / ``jobs=`` / ``config=``
        keywords are deprecated shims (see :meth:`certain`).
        """
        from .certain_answers import OpenQuery, certain_answers

        opts = merge_legacy_options(
            options, where="CertaintyEngine.certain_answers",
            method=method, jobs=jobs, config=config,
        )
        return certain_answers(OpenQuery(self.query, free), db, opts,
                               tracer=tracer)

    def metrics(self):
        """A unified :class:`repro.obs.EngineMetrics` snapshot.

        Bundles the plan-cache, parallel-executor, and incremental-view
        counters (plus any sources registered on the default
        :class:`repro.obs.MetricsRegistry`) into one typed object with a
        stable ``to_dict()``/``to_json()`` shape.  Supersedes the
        deprecated static trio ``plan_cache_stats`` / ``parallel_stats``
        / ``view_stats``.
        """
        from ..obs.metrics import collect_metrics

        return collect_metrics()

    @staticmethod
    def plan_cache_stats() -> Dict[str, int]:
        """Deprecated: use ``engine.metrics().plan_cache`` instead.

        Counters of the process-wide plan cache (hits/misses/...).
        """
        warnings.warn(
            "CertaintyEngine.plan_cache_stats() is deprecated; use "
            "engine.metrics().plan_cache",
            DeprecationWarning,
            stacklevel=2,
        )
        return plan_cache.stats()

    @staticmethod
    def parallel_stats() -> Dict[str, object]:
        """Deprecated: use ``engine.metrics().parallel`` instead.

        Aggregated counters of the sharded parallel executor (shard
        and worker counts, partition/merge/exec wall time, serial
        fallbacks by reason)."""
        warnings.warn(
            "CertaintyEngine.parallel_stats() is deprecated; use "
            "engine.metrics().parallel",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..parallel import parallel_stats

        return parallel_stats()

    def register_view(self, db: Database, free=(), tracer=None):
        """Materialize this query as an incrementally maintained view.

        Returns a :class:`repro.incremental.View` kept current by the
        database's changelog: after any mutation (or batch commit),
        ``view.holds`` / ``view.answers`` reflect the new certain
        answers without a full re-execution.  Requires the query to be
        in FO, like ``method="compiled"``.  ``tracer`` attaches a
        :class:`repro.obs.Tracer` to the database's view manager so
        maintenance work is traced.
        """
        from ..incremental import view_manager

        self._require_fo("incremental")
        return view_manager(db, tracer=tracer).register_view(self.query, free)

    @staticmethod
    def view_stats() -> Dict[str, int]:
        """Deprecated: use ``engine.metrics().views`` instead.

        Process-wide incremental-view counters (deltas applied, rows
        touched, fallback recomputes)."""
        warnings.warn(
            "CertaintyEngine.view_stats() is deprecated; use "
            "engine.metrics().views",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..incremental import view_stats

        return view_stats()

    def cross_validate(self, db: Database) -> CrossValidation:
        """Run every applicable strategy and collect the answers."""
        results = {"brute": self.certain(db, "brute")}
        if self.in_fo:
            for method in ("interpreted", "rewriting", "compiled", "sql"):
                results[method] = self.certain(db, method)
        return CrossValidation(results)


def certain(query: Query, db: Database, method: str = "auto") -> bool:
    """One-shot convenience wrapper around :class:`CertaintyEngine`."""
    return CertaintyEngine(query).certain(db, method)
