"""Construction of consistent first-order rewritings (Lemma 6.1 / Algorithm 1).

Given q ∈ sjfBCQ¬ with weakly-guarded negation and an acyclic attack
graph, this module builds a first-order sentence φ such that for every
database **db**:   db ⊨ φ  ⟺  every repair of db satisfies q.

The recursion follows the proof of Lemma 6.1:

1. *Base case.*  Every atom is all-key: any database is consistent on
   those relations, so the rewriting is the query itself as an FO
   sentence.
2. *Reification* (Corollary 6.9).  Pick an unattacked, non-all-key atom
   F (one exists: all-key atoms have no outgoing attacks, so a source of
   the sub-DAG of non-all-key atoms has no incoming edge at all).  Its
   key variables are unattacked, hence reifiable: replace them by fresh
   placeholder constants, rewrite, then re-open the placeholders under
   an existential quantifier.
3. *Elimination of an atom with variable-free primary key.*
   - F ∈ q⁻ with vars(F) = ∅: rewrite(q \\ {¬F}) ∧ ¬F (Lemma 6.2).
   - F ∈ q⁻ with variables in its value positions (Lemma 6.5): the
     rewriting of q \\ {¬F} conjoined with, for every fact R(a⃗, z⃗) in
     F's block, the rewriting of q \\ {¬F} extended with the
     disequality z⃗ ≠ s⃗ — carried natively on the query object (the
     formal translation to a fresh all-key ¬E atom of Lemma 6.6 lives
     in :mod:`repro.reductions.diseq`).
   - F ∈ q⁺: the block of F's (ground) key must be non-empty, and every
     fact in it must match F's value pattern and make the rest of the
     query certain.

Disequality constraints behave as negated all-key pseudo-atoms: they are
never picked, never attack, and are emitted at the base case.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.attack_graph import AttackGraph
from ..core.classify import Verdict, classify
from ..core.query import Diseq, Query
from ..core.terms import PlaceholderConstant, Variable, is_variable
from ..fo.formula import (
    AtomF,
    Eq,
    Formula,
    implies,
    make_and,
    make_exists,
    make_forall,
    make_not,
    make_or,
    substitute_terms,
)
from ..fo.simplify import simplify_fixpoint


class NotInFO(ValueError):
    """Raised when asked to rewrite a query with no FO rewriting.

    Carries the lint diagnostics (``QL002``/``QL004``, see
    :mod:`repro.lint`) that explain *why* Theorem 4.3 withholds the
    rewriting, so callers get a coded, span-capable explanation instead
    of a deep traceback.
    """

    def __init__(self, message: str, diagnostics: Tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class RewritingError(RuntimeError):
    """Raised on internal invariant violations (should not happen)."""


def pick_eliminable_atom(query: Query, graph: Optional[AttackGraph] = None) -> Atom:
    """An unattacked, non-all-key atom of q⁺ ∪ q⁻ (Algorithm 1's pick).

    Deterministic: the first such atom in query order (positives first).
    Raises :class:`RewritingError` when none exists, which cannot happen
    for acyclic attack graphs with at least one non-all-key atom.
    """
    graph = graph or AttackGraph(query)
    attacked = {g for _, g in graph.edges}
    for a in query.atoms:
        if not a.is_all_key and a not in attacked:
            return a
    raise RewritingError(
        "no unattacked non-all-key atom; is the attack graph cyclic?"
    )


class RewritingStep:
    """One step of Algorithm 1's recursion, for tracing/pedagogy."""

    __slots__ = ("action", "atom", "query", "depth")

    def __init__(self, action: str, atom: Optional[Atom], query: Query,
                 depth: int):
        self.action = action
        self.atom = atom
        self.query = query
        self.depth = depth

    def render(self) -> str:
        pad = "  " * self.depth
        subject = f" {self.atom!r}" if self.atom is not None else ""
        return f"{pad}{self.action}{subject}   on {self.query!r}"

    def __repr__(self) -> str:
        return f"RewritingStep({self.action!r}, {self.atom!r})"


class Rewriter:
    """Builds the consistent first-order rewriting of one query.

    With ``trace=True`` the recursion records a :class:`RewritingStep`
    for every base case, reification, and elimination, exposing how
    Algorithm 1 dismantles the query.
    """

    def __init__(self, query: Query, trace: bool = False):
        self.query = query
        self._fresh = itertools.count()
        self.trace_enabled = trace
        self.trace: List[RewritingStep] = []
        self._depth = 0
        for v in query.vars:
            if v.name.startswith("_z") or v.name.startswith("_k"):
                raise ValueError(
                    f"variable name {v.name!r} collides with rewriter-internal names"
                )

    def _record(self, action: str, atom: Optional[Atom], q: Query) -> None:
        if self.trace_enabled:
            self.trace.append(RewritingStep(action, atom, q, self._depth))

    def rewrite(self, simplify: bool = True) -> Formula:
        """The consistent first-order rewriting of the query.

        Raises :class:`NotInFO` when Theorem 4.3 says no rewriting
        exists, and when the query is outside the theorem's scope
        (negation not weakly guarded).
        """
        verdict = classify(self.query)
        if verdict.verdict is not Verdict.IN_FO:
            from ..lint import lint_query

            errors = lint_query(self.query).errors
            detail = "; ".join(d.one_line() for d in errors) or verdict.reason
            raise NotInFO(
                f"CERTAINTY(q) has no consistent first-order rewriting by "
                f"Theorem 4.3: {detail}",
                diagnostics=errors,
            )
        formula = self._rw(self.query)
        return simplify_fixpoint(formula) if simplify else formula

    # ------------------------------------------------------------------

    def _fresh_var(self, prefix: str) -> Variable:
        return Variable(f"_{prefix}{next(self._fresh)}")

    def _rw(self, q: Query) -> Formula:
        if q.all_atoms_all_key:
            self._record("base case (all atoms all-key)", None, q)
            return self._base_case(q)
        f = pick_eliminable_atom(q)
        self._depth += 1
        try:
            if f.key_vars:
                self._record("reify key of", f, q)
                return self._reify(q, f)
            if q.is_negative(f):
                self._record("eliminate negated", f, q)
                return self._eliminate_negative(q, f)
            self._record("eliminate positive", f, q)
            return self._eliminate_positive(q, f)
        finally:
            self._depth -= 1

    def _base_case(self, q: Query) -> Formula:
        parts: List[Formula] = [AtomF(a) for a in q.positives]
        parts += [make_not(AtomF(a)) for a in q.negatives]
        parts += [self._diseq_formula(d) for d in q.diseqs]
        return make_exists(sorted(q.vars), make_and(parts))

    @staticmethod
    def _diseq_formula(d: Diseq) -> Formula:
        return make_or([make_not(Eq(lhs, rhs)) for lhs, rhs in d.pairs])

    def _reify(self, q: Query, f: Atom) -> Formula:
        """Corollary 6.9: existentially quantify the unattacked key vars."""
        key_vars = sorted(f.key_vars)
        mapping = {x: PlaceholderConstant(x) for x in key_vars}
        sub = self._rw(q.substitute(mapping))
        opened = substitute_terms(sub, {p: x for x, p in mapping.items()})
        return make_exists(key_vars, opened)

    def _eliminate_negative(self, q: Query, f: Atom) -> Formula:
        """Lemmas 6.2 and 6.5: drop ¬F, quantifying over its block."""
        q1 = q.without(f)
        psi = self._rw(q1)
        if not f.vars:
            return make_and([psi, make_not(AtomF(f))])
        value_terms = f.value_terms
        zs = [self._fresh_var("z") for _ in value_terms]
        placeholders = [PlaceholderConstant(z) for z in zs]
        diseq = Diseq(tuple(zip(placeholders, value_terms)))
        phi = self._rw(q1.with_diseq(diseq))
        opened = substitute_terms(phi, dict(zip(placeholders, zs)))
        guard = AtomF(Atom(f.schema, f.key_terms + tuple(zs)))
        return make_and([psi, make_forall(zs, implies(guard, opened))])

    def _eliminate_positive(self, q: Query, f: Atom) -> Formula:
        """The q⁺ case of Lemma 6.1: the (ground-key) block of F must be
        non-empty and every fact in it must match F's value pattern and
        make the rest of the query certain."""
        q1 = q.without(f)
        value_terms = f.value_terms
        zs = [self._fresh_var("z") for _ in value_terms]

        pattern_eqs: List[Formula] = []
        var_to_z: Dict[Variable, Variable] = {}
        for z, t in zip(zs, value_terms):
            if is_variable(t):
                if t in var_to_z:
                    pattern_eqs.append(Eq(z, var_to_z[t]))
                else:
                    var_to_z[t] = z
            else:
                pattern_eqs.append(Eq(z, t))

        mapping = {y: PlaceholderConstant(y) for y in var_to_z}
        phi = self._rw(q1.substitute(mapping))
        opened = substitute_terms(
            phi, {p: var_to_z[y] for y, p in mapping.items()}
        )
        guard = AtomF(Atom(f.schema, f.key_terms + tuple(zs)))
        exists_part = make_exists(zs, guard)
        forall_part = make_forall(
            zs, implies(guard, make_and(pattern_eqs + [opened]))
        )
        return make_and([exists_part, forall_part])


def consistent_rewriting(query: Query, simplify: bool = True) -> Formula:
    """The consistent first-order rewriting of *query* (Theorem 4.3(2))."""
    return Rewriter(query).rewrite(simplify=simplify)


def has_consistent_rewriting(query: Query) -> bool:
    """Does Theorem 4.3 grant a consistent FO rewriting for *query*?"""
    return classify(query).verdict is Verdict.IN_FO
