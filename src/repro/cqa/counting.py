"""Counting repairs: the #CERTAINTY(q) problem (Section 2, related work).

Exact counting enumerates repairs (exponential); the Monte-Carlo
estimator samples repairs uniformly and reports a Wilson confidence
interval for the satisfying fraction.  The paper cites [25]: for
self-join-free conjunctive queries the counting problem is either in FP
or ♯P-complete — this module provides the exact and sampled baselines
that such a classification would be validated against.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.query import Query
from ..db.database import Database
from ..db.repairs import iter_repairs, sample_repairs
from ..db.satisfaction import satisfies


def _relevant(db: Database, query: Query) -> Database:
    keep = set(query.relations) & set(db.schemas)
    return db.restrict(keep)


@dataclass(frozen=True)
class RepairCount:
    """The exact result of #CERTAINTY(q) on one database."""

    satisfying: int
    total: int

    @property
    def fraction(self) -> float:
        return self.satisfying / self.total if self.total else 1.0

    @property
    def certain(self) -> bool:
        """CERTAINTY(q): every repair satisfies q."""
        return self.satisfying == self.total

    @property
    def possible(self) -> bool:
        """POSSIBILITY(q): some repair satisfies q."""
        return self.satisfying > 0


def count_satisfying_repairs(query: Query, db: Database) -> RepairCount:
    """Exact #CERTAINTY(q) by enumeration (exponential)."""
    relevant = _relevant(db, query)
    satisfying = 0
    total = 0
    for repair in iter_repairs(relevant):
        total += 1
        if satisfies(repair, query):
            satisfying += 1
    return RepairCount(satisfying, total)


@dataclass(frozen=True)
class FractionEstimate:
    """A sampled estimate of the satisfying-repair fraction."""

    estimate: float
    low: float
    high: float
    samples: int
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _wilson_interval(hits: int, n: int, z: float) -> Tuple[float, float]:
    if n == 0:
        return 0.0, 1.0
    p = hits / n
    denominator = 1 + z * z / n
    centre = (p + z * z / (2 * n)) / denominator
    margin = (z / denominator) * math.sqrt(
        p * (1 - p) / n + z * z / (4 * n * n)
    )
    # The interval must contain the point estimate even at the float
    # boundaries (p = 0 or 1 would otherwise round just inside).
    low = 0.0 if hits == 0 else max(0.0, centre - margin)
    high = 1.0 if hits == n else min(1.0, centre + margin)
    return low, high


def estimate_satisfying_fraction(
    query: Query,
    db: Database,
    samples: int = 400,
    confidence: float = 0.95,
    rng: Optional[random.Random] = None,
) -> FractionEstimate:
    """Monte-Carlo estimate of the satisfying fraction with a Wilson
    confidence interval."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = rng or random.Random()
    relevant = _relevant(db, query)
    hits = 0
    for repair in sample_repairs(relevant, samples, rng):
        if satisfies(repair, query):
            hits += 1
    # Normal quantile via inverse error function approximation.
    z = math.sqrt(2) * _erfinv(confidence)
    low, high = _wilson_interval(hits, samples, z)
    return FractionEstimate(hits / samples if samples else 1.0,
                            low, high, samples, confidence)


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-4)."""
    a = 0.147
    sign = 1.0 if x >= 0 else -1.0
    ln_term = math.log(1 - x * x)
    first = 2 / (math.pi * a) + ln_term / 2
    return sign * math.sqrt(math.sqrt(first * first - ln_term / a) - first)
