"""Randomized equivalence testing for first-order sentences.

FO equivalence is undecidable in general; over *bounded* databases it
is decidable by enumeration, and random databases give a practical
refutation-complete check: inequivalent sentences are distinguished
with probability growing in the trial count.  Used to compare
constructed rewritings against hand-written formulas (experiment E6)
and as a regression tool.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.atoms import RelationSchema
from ..db.database import Database
from .eval import Evaluator
from .formula import Formula, free_variables, schemas_of


@dataclass(frozen=True)
class Distinguisher:
    """A database on which two sentences disagree."""

    db: Database
    first_value: bool
    second_value: bool


def _merged_schemas(
    first: Formula, second: Formula,
    extra: Mapping[str, RelationSchema],
) -> Dict[str, RelationSchema]:
    schemas: Dict[str, RelationSchema] = dict(extra)
    for f in (first, second):
        for name, schema in schemas_of(f).items():
            existing = schemas.get(name)
            if existing is not None and existing.arity != schema.arity:
                raise ValueError(
                    f"arity clash for {name}: {existing.arity} vs "
                    f"{schema.arity}"
                )
            schemas.setdefault(name, schema)
    return schemas


def random_database_for(
    schemas: Mapping[str, RelationSchema],
    rng: random.Random,
    domain_size: int = 3,
    max_facts: int = 4,
    extra_values: Sequence = (),
) -> Database:
    """A random database over the given schemas."""
    pool: List = list(range(domain_size)) + list(extra_values)
    db = Database(schemas.values())
    for name, schema in schemas.items():
        for _ in range(rng.randint(0, max_facts)):
            db.add(name, tuple(rng.choice(pool)
                               for _ in range(schema.arity)))
    return db


def find_distinguisher(
    first: Formula,
    second: Formula,
    trials: int = 200,
    rng: Optional[random.Random] = None,
    schemas: Mapping[str, RelationSchema] = (),
    domain_size: int = 3,
    max_facts: int = 4,
) -> Optional[Distinguisher]:
    """Search for a random database where the sentences disagree.

    Constants occurring in either sentence are injected into the value
    pool so constant-sensitive differences are exercised.  Returns None
    when no distinguisher was found (evidence of, not proof of,
    equivalence).
    """
    if free_variables(first) or free_variables(second):
        raise ValueError("equivalence testing needs sentences (no free vars)")
    rng = rng or random.Random()
    merged = _merged_schemas(first, second, dict(schemas))
    from .formula import constants_of

    extra_values = sorted(
        {c.value for c in constants_of(first) | constants_of(second)},
        key=repr,
    )
    for _ in range(trials):
        db = random_database_for(merged, rng, domain_size, max_facts,
                                 extra_values)
        a = Evaluator(first, db).evaluate()
        b = Evaluator(second, db).evaluate()
        if a != b:
            return Distinguisher(db, a, b)
    return None


def equivalent_on_random_dbs(
    first: Formula,
    second: Formula,
    trials: int = 200,
    rng: Optional[random.Random] = None,
    schemas: Mapping[str, RelationSchema] = (),
) -> bool:
    """True when no random database distinguished the sentences."""
    return find_distinguisher(first, second, trials, rng, schemas) is None


def equivalent_on_all_small_dbs(
    first: Formula,
    second: Formula,
    schemas: Mapping[str, RelationSchema] = (),
    domain: Sequence = (0, 1),
) -> Optional[Distinguisher]:
    """Exhaustive bounded check: every database over *domain*.

    Exponential in the total number of possible facts; intended for
    single-relation or tiny multi-relation vocabularies.  Returns the
    first distinguisher, or None when the sentences agree on the whole
    bounded space.
    """
    merged = _merged_schemas(first, second, dict(schemas))
    all_facts: List[Tuple[str, Tuple]] = []
    for name, schema in sorted(merged.items()):
        for row in itertools.product(domain, repeat=schema.arity):
            all_facts.append((name, row))
    if len(all_facts) > 20:
        raise ValueError(
            f"bounded space too large: 2^{len(all_facts)} databases"
        )
    for bits in itertools.product((False, True), repeat=len(all_facts)):
        db = Database(merged.values())
        for keep, (name, row) in zip(bits, all_facts):
            if keep:
                db.add(name, row)
        a = Evaluator(first, db).evaluate()
        b = Evaluator(second, db).evaluate()
        if a != b:
            return Distinguisher(db, a, b)
    return None
