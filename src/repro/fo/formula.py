"""First-order formulas with equality and constants.

This is the target language of the consistent first-order rewriting: the
complexity class FO of the paper is "first-order logic with equality and
constants, but without other built-in predicates or function symbols",
evaluated under active-domain semantics.

The AST is deliberately small: atoms, equality, negation, conjunction,
disjunction, and the two quantifiers.  Implication is provided as sugar.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence

from ..core.atoms import Atom
from ..core.terms import Constant, Term, Variable, is_variable


class Formula:
    """Base class for first-order formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return make_and([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return make_or([self, other])

    def __invert__(self) -> "Formula":
        return make_not(self)


class Verum(Formula):
    """The formula TRUE."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "true"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Verum)

    def __hash__(self) -> int:
        return hash("Verum")


class Falsum(Formula):
    """The formula FALSE."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "false"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Falsum)

    def __hash__(self) -> int:
        return hash("Falsum")


TRUE = Verum()
FALSE = Falsum()


class AtomF(Formula):
    """An atomic formula R(t_1, ..., t_n), wrapping a core Atom."""

    __slots__ = ("atom", "_hash")

    def __init__(self, atom: Atom):
        self.atom = atom

    def __repr__(self) -> str:
        return repr(self.atom)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomF) and self.atom == other.atom

    def __hash__(self) -> int:
        # Formulas are immutable, and the rewritings of Algorithm 1 can
        # be exponentially large (Example 6.12), so every composite node
        # caches its hash: the memoized traversals below and the plan
        # cache both key on whole formulas.
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(("AtomF", self.atom))
            return self._hash


class Eq(Formula):
    """The equality t1 = t2."""

    __slots__ = ("lhs", "rhs", "_hash")

    def __init__(self, lhs: Term, rhs: Term):
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"{self.lhs} = {self.rhs}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Eq) and self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(("Eq", self.lhs, self.rhs))
            return self._hash


class Not(Formula):
    """Negation."""

    __slots__ = ("sub", "_hash")

    def __init__(self, sub: Formula):
        self.sub = sub

    def __repr__(self) -> str:
        return f"not({self.sub!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.sub == other.sub

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(("Not", self.sub))
            return self._hash


class And(Formula):
    """Conjunction over a tuple of subformulas."""

    __slots__ = ("subs", "_hash")

    def __init__(self, subs: Iterable[Formula]):
        self.subs = tuple(subs)

    def __repr__(self) -> str:
        return "(" + " and ".join(repr(s) for s in self.subs) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.subs == other.subs

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(("And", self.subs))
            return self._hash


class Or(Formula):
    """Disjunction over a tuple of subformulas."""

    __slots__ = ("subs", "_hash")

    def __init__(self, subs: Iterable[Formula]):
        self.subs = tuple(subs)

    def __repr__(self) -> str:
        return "(" + " or ".join(repr(s) for s in self.subs) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.subs == other.subs

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(("Or", self.subs))
            return self._hash


class Exists(Formula):
    """Existential quantification over a tuple of variables."""

    __slots__ = ("vars", "sub", "_hash")

    def __init__(self, variables: Iterable[Variable], sub: Formula):
        self.vars = tuple(variables)
        self.sub = sub

    def __repr__(self) -> str:
        names = " ".join(v.name for v in self.vars)
        return f"(exists {names}. {self.sub!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Exists) and self.vars == other.vars and self.sub == other.sub

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(("Exists", self.vars, self.sub))
            return self._hash


class Forall(Formula):
    """Universal quantification over a tuple of variables."""

    __slots__ = ("vars", "sub", "_hash")

    def __init__(self, variables: Iterable[Variable], sub: Formula):
        self.vars = tuple(variables)
        self.sub = sub

    def __repr__(self) -> str:
        names = " ".join(v.name for v in self.vars)
        return f"(forall {names}. {self.sub!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Forall) and self.vars == other.vars and self.sub == other.sub

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(("Forall", self.vars, self.sub))
            return self._hash


# ----------------------------------------------------------------------
# smart constructors
# ----------------------------------------------------------------------


def make_and(subs: Iterable[Formula]) -> Formula:
    """Flattening conjunction with TRUE/FALSE absorption."""
    flat = []
    for s in subs:
        if isinstance(s, Falsum):
            return FALSE
        if isinstance(s, Verum):
            continue
        if isinstance(s, And):
            flat.extend(s.subs)
        else:
            flat.append(s)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def make_or(subs: Iterable[Formula]) -> Formula:
    """Flattening disjunction with TRUE/FALSE absorption."""
    flat = []
    for s in subs:
        if isinstance(s, Verum):
            return TRUE
        if isinstance(s, Falsum):
            continue
        if isinstance(s, Or):
            flat.extend(s.subs)
        else:
            flat.append(s)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def make_not(sub: Formula) -> Formula:
    """Negation with double-negation and constant elimination."""
    if isinstance(sub, Verum):
        return FALSE
    if isinstance(sub, Falsum):
        return TRUE
    if isinstance(sub, Not):
        return sub.sub
    return Not(sub)


def make_exists(variables: Sequence[Variable], sub: Formula) -> Formula:
    """∃-quantification; drops an empty variable list.

    Quantifiers over the constant formulas TRUE/FALSE collapse, which
    assumes a non-empty domain.  Under active-domain semantics the
    domain is empty only for an entirely empty database and
    constant-free formula, where the collapse is harmless for every
    rewriting this library produces (their quantifiers are guarded).
    """
    variables = tuple(variables)
    if not variables:
        return sub
    if isinstance(sub, (Verum, Falsum)):
        return sub
    if isinstance(sub, Exists):
        return Exists(variables + sub.vars, sub.sub)
    return Exists(variables, sub)


def make_forall(variables: Sequence[Variable], sub: Formula) -> Formula:
    """∀-quantification; drops an empty variable list.

    Constant bodies collapse under the same non-empty-domain convention
    as :func:`make_exists`.
    """
    variables = tuple(variables)
    if not variables:
        return sub
    if isinstance(sub, (Verum, Falsum)):
        return sub
    if isinstance(sub, Forall):
        return Forall(variables + sub.vars, sub.sub)
    return Forall(variables, sub)


def implies(premise: Formula, conclusion: Formula) -> Formula:
    """premise → conclusion, encoded as ¬premise ∨ conclusion."""
    return make_or([make_not(premise), conclusion])


# ----------------------------------------------------------------------
# traversals
# ----------------------------------------------------------------------
#
# free_variables and constants_of are memoized: the certainty engine and
# the plan compiler call them repeatedly on the *same* (immutable)
# rewriting, and cross-validation runs re-derive them once per strategy.
# The caches are keyed on formula equality, so structurally identical
# rewritings built in different calls share entries; recursion means
# every subformula is cached too.


@lru_cache(maxsize=16384)
def free_variables(f: Formula) -> FrozenSet[Variable]:
    """The free variables of a formula."""
    if isinstance(f, (Verum, Falsum)):
        return frozenset()
    if isinstance(f, AtomF):
        return f.atom.vars
    if isinstance(f, Eq):
        out = set()
        for t in (f.lhs, f.rhs):
            if is_variable(t):
                out.add(t)
        return frozenset(out)
    if isinstance(f, Not):
        return free_variables(f.sub)
    if isinstance(f, (And, Or)):
        out = frozenset()
        for s in f.subs:
            out |= free_variables(s)
        return out
    if isinstance(f, (Exists, Forall)):
        return free_variables(f.sub) - frozenset(f.vars)
    raise TypeError(f"not a formula: {f!r}")


@lru_cache(maxsize=16384)
def constants_of(f: Formula) -> FrozenSet[Constant]:
    """All constants occurring in the formula."""
    if isinstance(f, (Verum, Falsum)):
        return frozenset()
    if isinstance(f, AtomF):
        return frozenset(t for t in f.atom.terms if not is_variable(t))
    if isinstance(f, Eq):
        return frozenset(t for t in (f.lhs, f.rhs) if not is_variable(t))
    if isinstance(f, Not):
        return constants_of(f.sub)
    if isinstance(f, (And, Or)):
        out = frozenset()
        for s in f.subs:
            out |= constants_of(s)
        return out
    if isinstance(f, (Exists, Forall)):
        return constants_of(f.sub)
    raise TypeError(f"not a formula: {f!r}")


def relations_of(f: Formula) -> FrozenSet[str]:
    """All relation names occurring in the formula."""
    if isinstance(f, AtomF):
        return frozenset([f.atom.relation])
    if isinstance(f, Not):
        return relations_of(f.sub)
    if isinstance(f, (And, Or)):
        out = frozenset()
        for s in f.subs:
            out |= relations_of(s)
        return out
    if isinstance(f, (Exists, Forall)):
        return relations_of(f.sub)
    return frozenset()


def schemas_of(f: Formula) -> Dict[str, object]:
    """Relation name -> RelationSchema for every atom of the formula."""
    out: Dict[str, object] = {}

    def walk(g: Formula) -> None:
        if isinstance(g, AtomF):
            out[g.atom.relation] = g.atom.schema
        elif isinstance(g, Not):
            walk(g.sub)
        elif isinstance(g, (And, Or)):
            for s in g.subs:
                walk(s)
        elif isinstance(g, (Exists, Forall)):
            walk(g.sub)

    walk(f)
    return out


def substitute_terms(f: Formula, mapping: Mapping[Term, Term]) -> Formula:
    """Replace terms (variables or constants) throughout a formula.

    Quantified variable lists are not renamed; callers replacing
    variables must ensure capture cannot occur.  The rewriting engine
    only ever replaces :class:`PlaceholderConstant` objects (which cannot
    be captured) and closed formulas' constants.
    """
    def sub_term(t: Term) -> Term:
        return mapping.get(t, t)

    if isinstance(f, (Verum, Falsum)):
        return f
    if isinstance(f, AtomF):
        return AtomF(Atom(f.atom.schema, tuple(sub_term(t) for t in f.atom.terms)))
    if isinstance(f, Eq):
        return Eq(sub_term(f.lhs), sub_term(f.rhs))
    if isinstance(f, Not):
        return Not(substitute_terms(f.sub, mapping))
    if isinstance(f, And):
        return And(tuple(substitute_terms(s, mapping) for s in f.subs))
    if isinstance(f, Or):
        return Or(tuple(substitute_terms(s, mapping) for s in f.subs))
    if isinstance(f, Exists):
        return Exists(f.vars, substitute_terms(f.sub, mapping))
    if isinstance(f, Forall):
        return Forall(f.vars, substitute_terms(f.sub, mapping))
    raise TypeError(f"not a formula: {f!r}")
