"""Compilation of first-order sentences to a single SQL query.

The practical payoff of a consistent first-order rewriting is that
CERTAINTY(q) "can be solved using standard SQL database technology"
(Section 1).  This module compiles any sentence of our FO fragment to
one SQL query evaluated by sqlite:

* every relation R of arity n becomes a table ``"R"`` with columns
  ``c0 .. c{n-1}``;
* constants are stored in an order-insensitive canonical text encoding
  (:func:`encode_value`), so structured values such as the pairs from
  the reduction gadgets round-trip safely;
* quantifiers are translated over an explicit active-domain CTE
  ``adom(v)``, built from every column of every table plus the
  constants of the formula — exactly the paper's active-domain
  semantics;
* the guarded shapes produced by Algorithm 1 (∃z⃗ (R(...) ∧ φ),
  ∀z⃗ (R(...) → φ)) are detected and compiled to EXISTS/NOT EXISTS over
  the relation itself rather than over adom, which is what a hand
  written consistent SQL rewriting would do.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping

from ..core.atoms import RelationSchema
from ..core.terms import Variable, is_variable
from .formula import (
    And,
    AtomF,
    Eq,
    Exists,
    Falsum,
    Forall,
    Formula,
    Not,
    Or,
    Verum,
    constants_of,
    schemas_of,
)


def encode_value(value) -> str:
    """Canonical, reversible text encoding of a constant for SQL storage.

    Strings, integers, booleans, and (nested) tuples are supported; this
    covers all workloads and all reduction gadgets in the library.
    Tuple elements are percent-escaped so the encoding is injective and
    :func:`decode_value` can invert it.
    """
    if isinstance(value, bool):
        return f"b:{int(value)}"
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, tuple):
        parts = [
            encode_value(v).replace("%", "%25").replace(",", "%2C")
            for v in value
        ]
        return "t:" + ",".join(parts)
    raise TypeError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode_value(text: str):
    """Invert :func:`encode_value`."""
    tag, _, payload = text.partition(":")
    if tag == "b":
        return payload == "1"
    if tag == "s":
        return payload
    if tag == "i":
        return int(payload)
    if tag == "t":
        if not payload:
            return ()
        parts = payload.split(",")
        return tuple(
            decode_value(p.replace("%2C", ",").replace("%25", "%"))
            for p in parts
        )
    raise ValueError(f"not an encoded value: {text!r}")


def _sql_literal(value) -> str:
    text = encode_value(value)
    return "'" + text.replace("'", "''") + "'"


def table_name(relation: str) -> str:
    """The quoted SQL table name for a relation."""
    return '"' + relation.replace('"', '""') + '"'


class SQLCompiler:
    """Compiles one sentence into a self-contained SELECT statement."""

    def __init__(self, formula: Formula, schemas: Mapping[str, RelationSchema]):
        self.formula = formula
        self.schemas = dict(schemas)
        self.schemas.update(schemas_of(formula))
        self._alias = itertools.count()

    def compile(self) -> str:
        """The full query: SELECT 1 iff the sentence holds, else 0."""
        adom_cte = self._adom_cte()
        body = self._compile(self.formula, {})
        return (
            f"WITH adom(v) AS ({adom_cte})\n"
            f"SELECT CASE WHEN {body} THEN 1 ELSE 0 END AS certain"
        )

    def adom_cte(self) -> str:
        """The active-domain CTE body (public, for SELECT-building)."""
        return self._adom_cte()

    def compile_expr(self, formula: Formula, scope: Dict[Variable, str]) -> str:
        """Compile a subformula to a boolean SQL expression under a
        variable -> SQL-expression scope (public, for SELECT-building)."""
        return self._compile(formula, dict(scope))

    # ------------------------------------------------------------------

    def _adom_cte(self) -> str:
        selects: List[str] = []
        for name in sorted(self.schemas):
            schema = self.schemas[name]
            tbl = table_name(name)
            for i in range(schema.arity):
                selects.append(f"SELECT c{i} AS v FROM {tbl}")
        for const in sorted(constants_of(self.formula), key=repr):
            selects.append(f"SELECT {_sql_literal(const.value)} AS v")
        if not selects:
            selects.append("SELECT NULL AS v WHERE 0")
        return " UNION ".join(selects)

    def _fresh_alias(self, prefix: str) -> str:
        return f"{prefix}{next(self._alias)}"

    def _term_sql(self, term, scope: Dict[Variable, str]) -> str:
        if is_variable(term):
            if term not in scope:
                raise ValueError(f"unbound variable {term.name} in SQL compilation")
            return scope[term]
        return _sql_literal(term.value)

    def _atom_sql(self, f: AtomF, scope: Dict[Variable, str]) -> str:
        alias = self._fresh_alias("t")
        tbl = table_name(f.atom.relation)
        conds = [
            f"{alias}.c{i} = {self._term_sql(t, scope)}"
            for i, t in enumerate(f.atom.terms)
        ]
        where = " AND ".join(conds) if conds else "1=1"
        return f"EXISTS (SELECT 1 FROM {tbl} {alias} WHERE {where})"

    def _guard_atom(self, conjuncts, quantified, scope):
        """A positive atom conjunct covering at least one quantified var
        whose every variable is bound or quantified here."""
        bound = set(scope)
        for c in conjuncts:
            if isinstance(c, AtomF):
                vs = c.atom.vars
                if vs & quantified and vs <= bound | quantified:
                    return c
        return None

    def _compile_exists(self, variables, body, scope, negate: bool) -> str:
        """EXISTS-style compilation shared by ∃ (negate=False) and the
        ∀-as-¬∃¬ translation (negate=True compiles NOT EXISTS(.. AND NOT body))."""
        variables = tuple(v for v in variables if v not in scope)
        if not variables:
            inner = self._compile(body, scope)
            return inner if not negate else inner
        quantified = set(variables)
        if negate:
            disjuncts = body.subs if isinstance(body, Or) else (body,)
            guards = [d.sub for d in disjuncts
                      if isinstance(d, Not) and isinstance(d.sub, AtomF)]
            guard = self._guard_atom(guards, quantified, scope)
        else:
            conjuncts = body.subs if isinstance(body, And) else (body,)
            guard = self._guard_atom(conjuncts, quantified, scope)

        inner_scope = dict(scope)
        from_items: List[str] = []
        eq_conds: List[str] = []

        if guard is not None:
            alias = self._fresh_alias("g")
            from_items.append(f"{table_name(guard.atom.relation)} {alias}")
            for i, t in enumerate(guard.atom.terms):
                col = f"{alias}.c{i}"
                if is_variable(t):
                    if t in inner_scope:
                        eq_conds.append(f"{col} = {inner_scope[t]}")
                    else:
                        inner_scope[t] = col
                else:
                    eq_conds.append(f"{col} = {_sql_literal(t.value)}")
        for v in variables:
            if v not in inner_scope:
                alias = self._fresh_alias("a")
                from_items.append(f"adom {alias}")
                inner_scope[v] = f"{alias}.v"

        body_sql = self._compile(body, inner_scope)
        if negate:
            body_sql = f"NOT ({body_sql})"
        conds = eq_conds + [body_sql]
        where = " AND ".join(conds)
        from_clause = ", ".join(from_items) if from_items else "(SELECT 1)"
        exists = f"EXISTS (SELECT 1 FROM {from_clause} WHERE {where})"
        return f"NOT {exists}" if negate else exists

    def _compile(self, f: Formula, scope: Dict[Variable, str]) -> str:
        if isinstance(f, Verum):
            return "1=1"
        if isinstance(f, Falsum):
            return "1=0"
        if isinstance(f, AtomF):
            return self._atom_sql(f, scope)
        if isinstance(f, Eq):
            return f"{self._term_sql(f.lhs, scope)} = {self._term_sql(f.rhs, scope)}"
        if isinstance(f, Not):
            return f"NOT ({self._compile(f.sub, scope)})"
        if isinstance(f, And):
            if not f.subs:
                return "1=1"
            return "(" + " AND ".join(self._compile(s, scope) for s in f.subs) + ")"
        if isinstance(f, Or):
            if not f.subs:
                return "1=0"
            return "(" + " OR ".join(self._compile(s, scope) for s in f.subs) + ")"
        if isinstance(f, Exists):
            return self._compile_exists(
                f.vars, f.sub, self._unshadow(f.vars, scope), negate=False
            )
        if isinstance(f, Forall):
            return self._compile_exists(
                f.vars, f.sub, self._unshadow(f.vars, scope), negate=True
            )
        raise TypeError(f"not a formula: {f!r}")

    @staticmethod
    def _unshadow(variables, scope: Dict[Variable, str]) -> Dict[Variable, str]:
        """Drop outer bindings shadowed by this quantifier's variables."""
        if any(v in scope for v in variables):
            return {k: v for k, v in scope.items() if k not in variables}
        return scope


def compile_to_sql(
    formula: Formula, schemas: Mapping[str, RelationSchema] = ()
) -> str:
    """Compile a sentence to one SQL query returning column ``certain``."""
    return SQLCompiler(formula, dict(schemas)).compile()
