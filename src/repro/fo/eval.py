"""Active-domain evaluation of first-order formulas on databases.

The paper's FO class is evaluated over the active domain (all constants
of the database plus the constants of the formula).  The evaluator first
converts to negation normal form and then exploits *guards*: in a
conjunction ∃z⃗ (R(..z⃗..) ∧ φ) the quantified variables are enumerated
from the rows of R rather than from the whole active domain, which is
what makes the consistent rewritings produced by Algorithm 1 — whose
quantifiers are always relation-guarded — fast in practice.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from ..core.terms import Variable, is_variable
from ..db.database import Database
from .formula import (
    And,
    AtomF,
    Eq,
    Exists,
    FALSE,
    Falsum,
    Forall,
    Formula,
    Not,
    Or,
    TRUE,
    Verum,
    constants_of,
    free_variables,
)

Env = Dict[Variable, object]


@lru_cache(maxsize=8192)
def nnf(f: Formula, negate: bool = False) -> Formula:
    """Negation normal form: negations pushed onto atoms and equalities.

    Memoized (formulas are immutable): every :class:`Evaluator` and every
    plan compilation normalizes its input, and repeated cross-validation
    runs construct evaluators for the same rewriting over and over.
    """
    if isinstance(f, Verum):
        return FALSE if negate else TRUE
    if isinstance(f, Falsum):
        return TRUE if negate else FALSE
    if isinstance(f, (AtomF, Eq)):
        return Not(f) if negate else f
    if isinstance(f, Not):
        return nnf(f.sub, not negate)
    if isinstance(f, And):
        subs = tuple(nnf(s, negate) for s in f.subs)
        return Or(subs) if negate else And(subs)
    if isinstance(f, Or):
        subs = tuple(nnf(s, negate) for s in f.subs)
        return And(subs) if negate else Or(subs)
    if isinstance(f, Exists):
        sub = nnf(f.sub, negate)
        return Forall(f.vars, sub) if negate else Exists(f.vars, sub)
    if isinstance(f, Forall):
        sub = nnf(f.sub, negate)
        return Exists(f.vars, sub) if negate else Forall(f.vars, sub)
    raise TypeError(f"not a formula: {f!r}")


def _term_value(term, env: Env):
    if is_variable(term):
        return env[term]
    return term.value


def _atom_holds(a: AtomF, db: Database, env: Env) -> bool:
    row = tuple(_term_value(t, env) for t in a.atom.terms)
    return db.contains(a.atom.relation, row)


def _match_rows(a: AtomF, db: Database, env: Env, quantified: set):
    """Yield env extensions binding quantified vars so that the atom holds."""
    atom = a.atom
    if atom.relation not in db.schemas:
        return
    bindings = {}
    for position, term in enumerate(atom.terms):
        if is_variable(term):
            if term in env:
                bindings[position] = env[term]
        else:
            bindings[position] = term.value
    for row in db.lookup(atom.relation, bindings):
        extended = dict(env)
        ok = True
        for term, value in zip(atom.terms, row):
            if is_variable(term):
                if term in extended:
                    if extended[term] != value:
                        ok = False
                        break
                elif term in quantified:
                    extended[term] = value
                else:
                    ok = False  # unbound free variable: ill-scoped
                    break
            elif term.value != value:
                ok = False
                break
        if ok:
            yield extended


def _pick_guard(conjuncts: Sequence[Formula], env: Env, quantified: set):
    """A positive atom conjunct whose variables are all bound-or-quantified
    and that binds at least one quantified variable."""
    bound = set(env)
    for c in conjuncts:
        if isinstance(c, AtomF):
            vs = c.atom.vars
            if vs & quantified and vs <= bound | quantified:
                return c
    return None


class Evaluator:
    """Evaluates one formula against one database (reusable across envs)."""

    def __init__(self, formula: Formula, db: Database):
        self.formula = nnf(formula)
        self.db = db
        consts = {c.value for c in constants_of(formula)}
        self.adom: Tuple = tuple(sorted(db.active_domain() | consts, key=repr))

    def evaluate(self, env: Optional[Env] = None) -> bool:
        """Truth value under the given environment (default: empty)."""
        return self._eval(self.formula, dict(env or {}))

    # ------------------------------------------------------------------

    def _eval(self, f: Formula, env: Env) -> bool:
        if isinstance(f, Verum):
            return True
        if isinstance(f, Falsum):
            return False
        if isinstance(f, AtomF):
            return _atom_holds(f, self.db, env)
        if isinstance(f, Eq):
            return _term_value(f.lhs, env) == _term_value(f.rhs, env)
        if isinstance(f, Not):
            # NNF: sub is an atom or equality.
            return not self._eval(f.sub, env)
        if isinstance(f, And):
            return all(self._eval(s, env) for s in f.subs)
        if isinstance(f, Or):
            return any(self._eval(s, env) for s in f.subs)
        if isinstance(f, Exists):
            return self._eval_exists(f.vars, f.sub, self._unshadow(f.vars, env))
        if isinstance(f, Forall):
            return self._eval_forall(f.vars, f.sub, self._unshadow(f.vars, env))
        raise TypeError(f"not a formula: {f!r}")

    @staticmethod
    def _unshadow(variables: Tuple[Variable, ...], env: Env) -> Env:
        """Drop outer bindings shadowed by this quantifier's variables."""
        if any(v in env for v in variables):
            return {k: v for k, v in env.items() if k not in variables}
        return env

    def _eval_exists(
        self, variables: Tuple[Variable, ...], body: Formula, env: Env
    ) -> bool:
        variables = tuple(v for v in variables if v not in env)
        if not variables:
            return self._eval(body, env)
        quantified = set(variables)
        conjuncts = body.subs if isinstance(body, And) else (body,)
        guard = _pick_guard(conjuncts, env, quantified)
        if guard is not None:
            for extended in _match_rows(guard, self.db, env, quantified):
                remaining = tuple(v for v in variables if v not in extended)
                if self._eval_exists(remaining, body, extended):
                    return True
            return False
        head, rest = variables[0], variables[1:]
        for value in self.adom:
            env[head] = value
            if self._eval_exists(rest, body, env):
                env.pop(head, None)
                return True
        env.pop(head, None)
        return False

    def _eval_forall(
        self, variables: Tuple[Variable, ...], body: Formula, env: Env
    ) -> bool:
        variables = tuple(v for v in variables if v not in env)
        if not variables:
            return self._eval(body, env)
        quantified = set(variables)
        # ∀z⃗ (¬G ∨ φ): only assignments making the guard G true matter.
        disjuncts = body.subs if isinstance(body, Or) else (body,)
        negated_atoms = [
            d.sub for d in disjuncts if isinstance(d, Not) and isinstance(d.sub, AtomF)
        ]
        guard = _pick_guard(negated_atoms, env, quantified)
        if guard is not None:
            for extended in _match_rows(guard, self.db, env, quantified):
                remaining = tuple(v for v in variables if v not in extended)
                if not self._eval_forall(remaining, body, extended):
                    return False
            return True
        head, rest = variables[0], variables[1:]
        for value in self.adom:
            env[head] = value
            if not self._eval_forall(rest, body, env):
                env.pop(head, None)
                return False
        env.pop(head, None)
        return True


def evaluate(formula: Formula, db: Database, env: Optional[Env] = None) -> bool:
    """One-shot evaluation of a sentence on a database."""
    missing = free_variables(formula) - set(env or {})
    if missing:
        raise ValueError(
            f"formula has unbound free variables: {sorted(v.name for v in missing)}"
        )
    return Evaluator(formula, db).evaluate(env)
