"""A text syntax for first-order formulas.

Grammar (precedence low to high: iff/implies < or < and < not/quantifier)::

    formula  := implied
    implied  := disjunct ( '->' disjunct )*          (right-associative)
    disjunct := conjunct ( ('or' | '|') conjunct )*
    conjunct := unary ( ('and' | '&') unary )*
    unary    := ('not' | '!' | '~') unary
              | ('exists' | 'forall') NAME+ '.' formula
              | '(' formula ')'
              | 'true' | 'false'
              | atom | equality
    atom     := NAME '(' [term (',' term)*] ')'
    equality := term ('=' | '!=') term
    term     := NAME | INTEGER | 'string' | "string"

Relations get all-key signatures (keys are irrelevant for formula
evaluation; pass explicit schemas to the SQL compiler when they
matter).  Examples::

    parse_formula("exists x y. R(x, y) and not S(y, x)")
    parse_formula("forall x. P(x) -> exists y. (Q(x, y) and y != 'c')")
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from ..core.atoms import Atom, RelationSchema
from ..core.terms import Constant, Term, Variable
from .formula import (
    AtomF,
    Eq,
    FALSE,
    Formula,
    TRUE,
    free_variables,
    implies,
    make_and,
    make_exists,
    make_forall,
    make_not,
    make_or,
)


class FormulaParseError(ValueError):
    """Raised on malformed formula text."""


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_KEYWORDS = {"exists", "forall", "and", "or", "not", "true", "false"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<neq>!=)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>-?\d+)
  | (?P<str>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<punct>[().,=|&!~])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    out: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise FormulaParseError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        kind = match.lastgroup
        value = match.group()
        if kind != "ws":
            if kind == "name" and value in _KEYWORDS:
                kind = value
            out.append(_Token(kind, value, position))
        position = match.end()
    out.append(_Token("eof", "", position))
    return out


class _FormulaParser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self.advance()
        if token.kind != kind or (value is not None and token.value != value):
            raise FormulaParseError(
                f"expected {value or kind} at offset {token.position}, "
                f"got {token.value or 'end of input'!r}"
            )
        return token

    # precedence climbing ------------------------------------------------

    def parse_formula(self) -> Formula:
        left = self.parse_disjunct()
        if self.peek().kind == "arrow":
            self.advance()
            right = self.parse_formula()  # right-associative
            return implies(left, right)
        return left

    def parse_disjunct(self) -> Formula:
        parts = [self.parse_conjunct()]
        while self.peek().kind == "or" or self.peek().value == "|":
            self.advance()
            parts.append(self.parse_conjunct())
        return make_or(parts) if len(parts) > 1 else parts[0]

    def parse_conjunct(self) -> Formula:
        parts = [self.parse_unary()]
        while self.peek().kind == "and" or self.peek().value == "&":
            self.advance()
            parts.append(self.parse_unary())
        return make_and(parts) if len(parts) > 1 else parts[0]

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token.kind == "not" or token.value in ("!", "~"):
            self.advance()
            return make_not(self.parse_unary())
        if token.kind in ("exists", "forall"):
            self.advance()
            variables = [Variable(self.expect("name").value)]
            while self.peek().kind == "name" and not self._at_atom():
                variables.append(Variable(self.advance().value))
            self.expect("punct", ".")
            body = self.parse_formula()
            build = make_exists if token.kind == "exists" else make_forall
            return build(variables, body)
        if token.value == "(":
            self.advance()
            inner = self.parse_formula()
            self.expect("punct", ")")
            return inner
        if token.kind == "true":
            self.advance()
            return TRUE
        if token.kind == "false":
            self.advance()
            return FALSE
        return self.parse_atom_or_equality()

    def _at_atom(self) -> bool:
        """Is the current NAME followed by '(' (an atom, ending the
        quantifier's variable list)?"""
        nxt = self.tokens[self.index + 1]
        return nxt.value == "("

    def parse_atom_or_equality(self) -> Formula:
        token = self.peek()
        if token.kind == "name" and self._at_atom():
            name = self.advance().value
            self.expect("punct", "(")
            terms: List[Term] = []
            if self.peek().value != ")":
                terms.append(self.parse_term())
                while self.peek().value == ",":
                    self.advance()
                    terms.append(self.parse_term())
            self.expect("punct", ")")
            if not terms:
                raise FormulaParseError(f"atom {name} needs at least one term")
            schema = RelationSchema(name, len(terms), len(terms))
            return AtomF(Atom(schema, tuple(terms)))
        lhs = self.parse_term()
        op = self.advance()
        if op.value == "=":
            return Eq(lhs, self.parse_term())
        if op.kind == "neq":
            return make_not(Eq(lhs, self.parse_term()))
        raise FormulaParseError(
            f"expected '=' or '!=' at offset {op.position}, got {op.value!r}"
        )

    def parse_term(self) -> Term:
        token = self.advance()
        if token.kind == "name":
            return Variable(token.value)
        if token.kind == "int":
            return Constant(int(token.value))
        if token.kind == "str":
            raw = token.value[1:-1]
            return Constant(re.sub(r"\\(.)", r"\1", raw))
        raise FormulaParseError(
            f"expected a term at offset {token.position}, got {token.value!r}"
        )


def parse_formula(text: str) -> Formula:
    """Parse a first-order formula from text (see module docstring)."""
    parser = _FormulaParser(text)
    formula = parser.parse_formula()
    parser.expect("eof")
    return formula


def parse_sentence(text: str) -> Formula:
    """Parse a formula and require it to be a sentence (no free vars)."""
    formula = parse_formula(text)
    free = free_variables(formula)
    if free:
        raise FormulaParseError(
            f"formula has free variables: {sorted(v.name for v in free)}"
        )
    return formula
