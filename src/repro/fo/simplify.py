"""Equivalence-preserving simplification of first-order formulas.

The rewriting construction of Lemma 6.1 produces formulas with some
easily removable redundancy (trivial equalities, single-element
connectives, vacuous quantifiers).  The passes here are purely local and
preserve logical equivalence under active-domain semantics.
"""

from __future__ import annotations

from typing import Set

from ..core.terms import is_variable
from .formula import (
    And,
    AtomF,
    Eq,
    Exists,
    FALSE,
    Falsum,
    Forall,
    Formula,
    Not,
    Or,
    TRUE,
    Verum,
    free_variables,
    make_and,
    make_exists,
    make_forall,
    make_not,
    make_or,
)


def _simplify_eq(f: Eq) -> Formula:
    if f.lhs == f.rhs:
        return TRUE
    if not is_variable(f.lhs) and not is_variable(f.rhs):
        return TRUE if f.lhs.value == f.rhs.value else FALSE
    return f


def simplify(f: Formula) -> Formula:
    """One bottom-up simplification pass (idempotent in practice)."""
    if isinstance(f, (Verum, Falsum, AtomF)):
        return f
    if isinstance(f, Eq):
        return _simplify_eq(f)
    if isinstance(f, Not):
        return make_not(simplify(f.sub))
    if isinstance(f, And):
        subs = [simplify(s) for s in f.subs]
        seen: Set[Formula] = set()
        unique = []
        for s in subs:
            if s not in seen:
                seen.add(s)
                unique.append(s)
        return make_and(unique)
    if isinstance(f, Or):
        subs = [simplify(s) for s in f.subs]
        seen = set()
        unique = []
        for s in subs:
            if s not in seen:
                seen.add(s)
                unique.append(s)
        return make_or(unique)
    if isinstance(f, Exists):
        sub = simplify(f.sub)
        used = free_variables(sub)
        keep = tuple(v for v in f.vars if v in used)
        return make_exists(keep, sub)
    if isinstance(f, Forall):
        sub = simplify(f.sub)
        used = free_variables(sub)
        keep = tuple(v for v in f.vars if v in used)
        return make_forall(keep, sub)
    raise TypeError(f"not a formula: {f!r}")


def simplify_fixpoint(f: Formula, max_rounds: int = 10) -> Formula:
    """Apply :func:`simplify` until a fixpoint (or the round limit)."""
    for _ in range(max_rounds):
        g = simplify(f)
        if g == f:
            return g
        f = g
    return f
