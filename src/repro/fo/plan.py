"""Logical relational plans and a set-at-a-time executor.

The consistent rewritings of Algorithm 1 are first-order, so they can be
evaluated like any relational query: not tuple-at-a-time over candidate
environments (what :class:`repro.fo.eval.Evaluator` does) but
set-at-a-time, where every operator consumes and produces whole
*relations of variable assignments*.  This module defines the plan IR
and its executor; :mod:`repro.fo.compile` lowers NNF formulas into it.

Operators
---------
``Scan``          rows of one database relation matching an atom pattern
``Literal``       a constant relation (TRUE = {()}, FALSE = {})
``AdomProduct``   the k-fold product of the active domain
``AdomGuard``     {()} iff the active domain is non-empty
``AdomEq``        the diagonal {(v, v) : v in adom}
``Select``        row filter on (dis)equalities between columns/constants
``Project``       column projection/reordering with de-duplication
``Join``          natural hash join on the shared columns
``SemiJoin``      left rows with at least one match in right
``AntiJoin``      left rows with no match in right
``Union``         set union of same-schema inputs
``Difference``    set difference of same-schema inputs

Guarded quantifiers never touch ``AdomProduct``: an existential guard
becomes a ``Scan`` feeding joins, and a universally quantified,
negatively guarded body becomes an ``AntiJoin`` against the relation of
its violating assignments — the set-difference form of relational
division.  The active-domain operators exist only as the total fallback
for unguarded shapes, mirroring the ``adom`` CTE of the SQL backend.

Every node's ``cols`` are sorted by variable name (a root ``Project``
may reorder to the caller's answer-column order), and execution returns
a ``set`` of value tuples aligned with ``cols``.
"""

from __future__ import annotations

import itertools
import operator
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.terms import Variable, is_variable
from ..db.database import Database

Row = Tuple
Cols = Tuple[Variable, ...]

# A Select operand: ("col", index into child's cols) or ("const", value).
Operand = Tuple[str, object]
# A Select condition: lhs, rhs, and whether they must be equal.
Condition = Tuple[Operand, Operand, bool]


class PlanError(ValueError):
    """Raised on malformed plan construction (schema mismatches)."""


def _tuple_getter(positions: Sequence[int]):
    """A row -> tuple projection function.

    ``operator.itemgetter`` runs at C speed but returns a bare value for
    a single index and has no zero-index form; normalize both so every
    getter yields a tuple.
    """
    positions = tuple(positions)
    if len(positions) >= 2:
        return operator.itemgetter(*positions)
    if len(positions) == 1:
        i = positions[0]
        return lambda row: (row[i],)
    return lambda row: ()


class Plan:
    """Base class: a node computing a set of rows over ``cols``.

    Nodes are plain slotted objects — constructors do not validate.
    The structural contract every consumer (the :class:`Executor`, the
    incremental deltas, the parallel workers) relies on is pinned as
    invariants PV001–PV013 in :mod:`repro.analysis.verifier`; set
    ``REPRO_VERIFY_PLANS=1`` to check it after every compile.
    """

    __slots__ = ("cols",)

    def __init__(self, cols: Sequence[Variable]):
        self.cols: Cols = tuple(cols)

    def children(self) -> Tuple["Plan", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.cols)
        return f"{self.label()} -> [{names}]"


def _sorted_cols(variables) -> Cols:
    return tuple(sorted(variables))


class Scan(Plan):
    """Rows of one relation matching an atom's term pattern.

    Constant positions are pushed into a :meth:`Database.lookup`, which
    reuses (and lazily builds) the hash indexes of the database instead
    of scanning the relation.  Repeated variables become row-internal
    equality checks; output columns are the atom's distinct variables.
    """

    __slots__ = ("atom", "consts", "eq_checks", "proj")

    def __init__(self, atom: Atom):
        super().__init__(_sorted_cols(atom.vars))
        self.atom = atom
        self.consts: Dict[int, object] = {}
        first_pos: Dict[Variable, int] = {}
        checks: List[Tuple[int, int]] = []
        for i, term in enumerate(atom.terms):
            if is_variable(term):
                if term in first_pos:
                    checks.append((first_pos[term], i))
                else:
                    first_pos[term] = i
            else:
                self.consts[i] = term.value
        self.eq_checks: Tuple[Tuple[int, int], ...] = tuple(checks)
        self.proj: Tuple[int, ...] = tuple(first_pos[v] for v in self.cols)

    def label(self) -> str:
        return f"Scan {self.atom!r}"


class Literal(Plan):
    """A constant relation.  ``Literal((), {()})`` is TRUE, with no rows
    FALSE; equality conjuncts ``x = c`` become one-row literals."""

    __slots__ = ("rows",)

    def __init__(self, cols: Sequence[Variable], rows):
        super().__init__(cols)
        self.rows: frozenset = frozenset(tuple(r) for r in rows)

    def label(self) -> str:
        return f"Literal {sorted(self.rows, key=repr)!r}"


class AdomProduct(Plan):
    """The k-fold Cartesian product of the active domain.

    The total fallback for variables no generator ranges over; for
    ``cols = ()`` this is the nullary TRUE relation ``{()}``.
    """

    __slots__ = ()

    def label(self) -> str:
        return f"AdomProduct^{len(self.cols)}"


class AdomGuard(Plan):
    """{()} iff the active domain is non-empty.

    Vacuous quantifiers still range over the active domain, so
    ``exists x TRUE`` is false on an empty domain; this nullary guard
    preserves that corner of the interpreter's semantics.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(())


class AdomEq(Plan):
    """The diagonal {(v, v) : v in adom}, for unbound ``x = y``."""

    __slots__ = ()

    def __init__(self, a: Variable, b: Variable):
        if a == b or len({a, b}) != 2:
            raise PlanError("AdomEq needs two distinct variables")
        super().__init__(_sorted_cols((a, b)))


class Select(Plan):
    """Filter rows by (dis)equality conditions over columns/constants."""

    __slots__ = ("child", "conds")

    def __init__(self, child: Plan, conds: Sequence[Condition]):
        super().__init__(child.cols)
        self.child = child
        self.conds: Tuple[Condition, ...] = tuple(conds)

    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        parts = []
        for lhs, rhs, equal in self.conds:
            op = "=" if equal else "!="
            parts.append(f"{_operand_str(self, lhs)} {op} {_operand_str(self, rhs)}")
        return f"Select {' and '.join(parts)}"


def _operand_str(node: Select, operand: Operand) -> str:
    kind, payload = operand
    if kind == "col":
        return node.child.cols[payload].name  # type: ignore[index]
    return repr(payload)


class Project(Plan):
    """Project (and possibly reorder) onto a subset of the columns."""

    __slots__ = ("child", "positions")

    def __init__(self, child: Plan, cols: Sequence[Variable]):
        cols = tuple(cols)
        missing = [v for v in cols if v not in child.cols]
        if missing:
            raise PlanError(f"cannot project onto absent columns {missing}")
        super().__init__(cols)
        self.child = child
        self.positions: Tuple[int, ...] = tuple(child.cols.index(v) for v in cols)

    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Project [{', '.join(v.name for v in self.cols)}]"


class _Binary(Plan):
    __slots__ = ("left", "right")

    def __init__(self, cols: Sequence[Variable], left: Plan, right: Plan):
        super().__init__(cols)
        self.left = left
        self.right = right

    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    @property
    def shared(self) -> Cols:
        rset = set(self.right.cols)
        return tuple(c for c in self.left.cols if c in rset)

    def label(self) -> str:
        on = ", ".join(v.name for v in self.shared)
        return f"{type(self).__name__} on [{on}]"


class Join(_Binary):
    """Natural hash join on the shared columns (cross product if none)."""

    __slots__ = ("emit",)

    def __init__(self, left: Plan, right: Plan):
        cols = _sorted_cols(set(left.cols) | set(right.cols))
        super().__init__(cols, left, right)
        lpos = {c: i for i, c in enumerate(left.cols)}
        rpos = {c: i for i, c in enumerate(right.cols)}
        self.emit: Tuple[Tuple[int, int], ...] = tuple(
            (0, lpos[c]) if c in lpos else (1, rpos[c]) for c in cols
        )


class SemiJoin(_Binary):
    """Left rows with at least one right match on the shared columns."""

    __slots__ = ()

    def __init__(self, left: Plan, right: Plan):
        super().__init__(left.cols, left, right)


class AntiJoin(_Binary):
    """Left rows with no right match on the shared columns.

    With ``right`` the set of violating assignments of a universally
    quantified body, this is relational division in difference form —
    how the compiler lowers the guarded ∀ of consistent rewritings.
    """

    __slots__ = ()

    def __init__(self, left: Plan, right: Plan):
        super().__init__(left.cols, left, right)


class Union(Plan):
    """Set union of same-schema inputs (disjunction)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Plan]):
        parts = tuple(parts)
        if not parts:
            raise PlanError("Union needs at least one input")
        for p in parts:
            if p.cols != parts[0].cols:
                raise PlanError(
                    f"Union inputs disagree on columns: {p.cols} vs {parts[0].cols}"
                )
        super().__init__(parts[0].cols)
        self.parts = parts

    def children(self) -> Tuple[Plan, ...]:
        return self.parts


class Difference(_Binary):
    """Left minus right over identical columns (complementation)."""

    __slots__ = ()

    def __init__(self, left: Plan, right: Plan):
        if left.cols != right.cols:
            raise PlanError(
                f"Difference inputs disagree on columns: "
                f"{left.cols} vs {right.cols}"
            )
        super().__init__(left.cols, left, right)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


class Executor:
    """Executes plans against one database and one active domain.

    Results are memoized per plan node (by identity), so DAG-shaped
    plans evaluate shared subplans once.  Execution is pure set algebra:
    no per-row environment dictionaries, no re-walking the formula.

    ``profile`` (a :class:`repro.obs.profile.PlanProfile`, or any
    object with ``record``/``count``) turns on per-operator
    observability: inclusive wall time and output cardinality per
    node, plus memo/index/probe counters.  The default ``None`` keeps
    the hot path on the exact pre-instrumentation code — one
    ``is None`` branch per node execution is the entire cost.
    """

    def __init__(self, db: Database, adom: Optional[Sequence] = None,
                 constants: Sequence = (), profile=None):
        self.db = db
        self._adom: Optional[Tuple] = tuple(adom) if adom is not None else None
        self._constants: Tuple = tuple(constants)
        self._memo: Dict[object, Set[Row]] = {}
        self._probe_memo: Dict[object, bool] = {}
        self._adom_frozen: Optional[Set] = None
        self._profile = profile

    @property
    def adom(self) -> Tuple:
        """The active domain, computed on first use — fully guarded
        plans never pay for collecting and sorting it."""
        if self._adom is None:
            dom = set(self.db.active_domain())
            dom.update(self._constants)
            self._adom = tuple(sorted(dom, key=repr))
        return self._adom

    def run(self, plan: Plan) -> Set[Row]:
        # Scans memoize structurally: two scans of the same relation
        # with the same constants/checks/projection yield the same rows
        # even when their columns carry different variable names.
        if type(plan) is Scan:
            key: object = ("scan", plan.atom.relation,
                           tuple(sorted(plan.consts.items())),
                           plan.eq_checks, plan.proj)
        else:
            key = id(plan)
        cached = self._memo.get(key)
        if cached is None:
            profile = self._profile
            if profile is None:
                cached = self._dispatch(plan)
            else:
                t0 = perf_counter()
                cached = self._dispatch(plan)
                profile.record(plan, perf_counter() - t0, len(cached))
            self._memo[key] = cached
        elif self._profile is not None:
            self._profile.count(plan, "memo_hits")
        return cached

    # ------------------------------------------------------------------

    def _dispatch(self, plan: Plan) -> Set[Row]:
        method = self._HANDLERS.get(type(plan))
        if method is None:
            raise TypeError(f"no executor for plan node {plan!r}")
        return method(self, plan)

    def _run_scan(self, plan: Scan) -> Set[Row]:
        schema = self.db.schemas.get(plan.atom.relation)
        if schema is None or schema.arity != plan.atom.schema.arity:
            return set()
        checks = plan.eq_checks
        proj = plan.proj
        profile = self._profile
        if not plan.consts and not checks:
            # The keys of the database's hash index on ``proj`` ARE the
            # projected rows — and the index is version-cached on the
            # database, so repeated executions reuse it.
            if profile is not None:
                profile.count(plan, "index_hits")
            return set(self.db.index(plan.atom.relation, proj))
        rows: Sequence[Row] = self.db.lookup(plan.atom.relation, plan.consts)
        if profile is not None:
            profile.count(plan, "index_hits")
            profile.count(plan, "rows_scanned", len(rows))
        if checks:
            rows = [r for r in rows if all(r[i] == r[j] for i, j in checks)]
        getter = _tuple_getter(proj)
        return {getter(r) for r in rows}

    def _run_literal(self, plan: Literal) -> Set[Row]:
        return set(plan.rows)

    def _run_adom_product(self, plan: AdomProduct) -> Set[Row]:
        return set(itertools.product(self.adom, repeat=len(plan.cols)))

    def _run_adom_guard(self, plan: AdomGuard) -> Set[Row]:
        return {()} if self.adom else set()

    def _run_adom_eq(self, plan: AdomEq) -> Set[Row]:
        return {(v, v) for v in self.adom}

    def _run_select(self, plan: Select) -> Set[Row]:
        rows = self.run(plan.child)
        for lhs, rhs, equal in plan.conds:
            getl = self._operand_getter(lhs)
            getr = self._operand_getter(rhs)
            if equal:
                rows = {r for r in rows if getl(r) == getr(r)}
            else:
                rows = {r for r in rows if getl(r) != getr(r)}
        return rows

    @staticmethod
    def _operand_getter(operand: Operand):
        kind, payload = operand
        if kind == "col":
            return lambda row: row[payload]
        return lambda row: payload

    def _run_project(self, plan: Project) -> Set[Row]:
        getter = _tuple_getter(plan.positions)
        return {getter(r) for r in self.run(plan.child)}

    def _run_join(self, plan: Join) -> Set[Row]:
        left, right = self.run(plan.left), self.run(plan.right)
        if not left or not right:
            return set()
        shared = plan.shared
        lkey = _tuple_getter([plan.left.cols.index(c) for c in shared])
        rkey = _tuple_getter([plan.right.cols.index(c) for c in shared])
        table: Dict[Row, List[Row]] = {}
        for r in right:
            table.setdefault(rkey(r), []).append(r)
        # Emit positions rebased onto the concatenated (left + right) row,
        # so output rows come from one C-level itemgetter call.
        width = len(plan.left.cols)
        emit = _tuple_getter(
            [i if side == 0 else width + i for side, i in plan.emit]
        )
        out: Set[Row] = set()
        empty: List[Row] = []
        for lrow in left:
            for rrow in table.get(lkey(lrow), empty):
                out.add(emit(lrow + rrow))
        return out

    def _semi_keys(self, plan: _Binary):
        shared = plan.shared
        lkey = _tuple_getter([plan.left.cols.index(c) for c in shared])
        rkey = _tuple_getter([plan.right.cols.index(c) for c in shared])
        keys = {rkey(r) for r in self.run(plan.right)}
        return lkey, keys

    def _run_semi_join(self, plan: SemiJoin) -> Set[Row]:
        left = self.run(plan.left)
        if not left:
            return set()
        lkey, keys = self._semi_keys(plan)
        return {r for r in left if lkey(r) in keys}

    def _run_anti_join(self, plan: AntiJoin) -> Set[Row]:
        left = self.run(plan.left)
        if not left:
            return set()
        lkey, keys = self._semi_keys(plan)
        return {r for r in left if lkey(r) not in keys}

    def _run_union(self, plan: Union) -> Set[Row]:
        out: Set[Row] = set()
        for part in plan.parts:
            out |= self.run(part)
        return out

    def _run_difference(self, plan: Difference) -> Set[Row]:
        return self.run(plan.left) - self.run(plan.right)

    # ------------------------------------------------------------------
    # short-circuit (boolean) evaluation
    # ------------------------------------------------------------------

    def nonempty(self, plan: Plan) -> bool:
        """Does the plan produce at least one row?

        Unlike ``bool(run(plan))`` this never materializes the result:
        rows stream lazily to the root, and every filtering operator
        (semi/anti-join, difference) *probes* its right side with the
        candidate row's values bound instead of materializing it —
        sideways information passing, which turns the violator sets of
        lowered ∀-blocks into per-key index lookups.  An existential
        root therefore stops at its first witness and a universal root
        at its first violation.
        """
        if id(plan) in self._memo:  # already materialized: reuse it
            return bool(self.run(plan))
        return self.probe(plan, {})

    def probe(self, plan: Plan, binding: Dict[Variable, object]) -> bool:
        """∃ a row of ``plan`` consistent with ``binding`` (a partial
        assignment of the plan's columns)?  Short-circuits at the first
        such row; results are memoized per (node, binding)."""
        key = (id(plan), tuple(sorted(binding.items())))
        profile = self._profile
        cached = self._probe_memo.get(key)
        if cached is None:
            if profile is not None:
                profile.count(plan, "probe_calls")
            sentinel = object()
            cached = next(self._iter_bound(plan, binding),
                          sentinel) is not sentinel
            self._probe_memo[key] = cached
        elif profile is not None:
            profile.count(plan, "probe_calls")
            profile.count(plan, "probe_memo_hits")
        return cached

    def _iter_bound(self, plan: Plan, binding: Dict[Variable, object]):
        """Lazily iterate rows of ``plan`` consistent with ``binding``.

        Duplicates are allowed (callers probe for existence).  Bindings
        are pushed down: into scan index lookups, through projections
        and joins, and — crucially — into the right sides of semi/anti-
        joins and differences as per-row probes.  Nodes already
        materialized by :meth:`run`, and node types without a lazy
        form, fall back to filtering the memoized result.
        """
        if id(plan) in self._memo:
            return self._iter_filtered(plan, binding)
        method = self._LAZY_HANDLERS.get(type(plan))
        if method is not None:
            return method(self, plan, binding)
        return self._iter_filtered(plan, binding)

    def _iter_filtered(self, plan: Plan, binding):
        rows = self.run(plan)
        if not binding:
            return iter(rows)
        checks = [(plan.cols.index(c), v) for c, v in binding.items()]
        return (r for r in rows if all(r[i] == v for i, v in checks))

    def _iter_bound_scan(self, plan: Scan, binding):
        schema = self.db.schemas.get(plan.atom.relation)
        if schema is None or schema.arity != plan.atom.schema.arity:
            return
        if self._profile is not None:
            self._profile.count(plan, "index_hits")
        consts = plan.consts
        if binding:
            consts = dict(consts)
            for i, col in enumerate(plan.cols):
                if col in binding:
                    consts[plan.proj[i]] = binding[col]
        rows = self.db.lookup(plan.atom.relation, consts)
        checks = plan.eq_checks
        getter = _tuple_getter(plan.proj)
        for r in rows:
            if not checks or all(r[i] == r[j] for i, j in checks):
                yield getter(r)

    def _iter_bound_literal(self, plan: Literal, binding):
        checks = [(plan.cols.index(c), v) for c, v in binding.items()]
        for r in plan.rows:
            if all(r[i] == v for i, v in checks):
                yield r

    @property
    def _adom_set(self) -> Set:
        if self._adom_frozen is None:
            self._adom_frozen = set(self.adom)
        return self._adom_frozen

    def _iter_bound_adom_product(self, plan: AdomProduct, binding):
        pools = []
        for col in plan.cols:
            if col in binding:
                if binding[col] not in self._adom_set:
                    return
                pools.append((binding[col],))
            else:
                pools.append(self.adom)
        yield from itertools.product(*pools)

    def _iter_bound_adom_guard(self, plan: AdomGuard, binding):
        if self.adom:
            yield ()

    def _iter_bound_adom_eq(self, plan: AdomEq, binding):
        values = {binding[c] for c in plan.cols if c in binding}
        if len(values) > 1:
            return
        if values:
            v = values.pop()
            if v in self._adom_set:
                yield (v, v)
            return
        for v in self.adom:
            yield (v, v)

    def _iter_bound_select(self, plan: Select, binding):
        getters = [
            (self._operand_getter(lhs), self._operand_getter(rhs), equal)
            for lhs, rhs, equal in plan.conds
        ]
        for row in self._iter_bound(plan.child, binding):
            if all((getl(row) == getr(row)) is equal
                   for getl, getr, equal in getters):
                yield row

    def _iter_bound_project(self, plan: Project, binding):
        child_binding = {
            plan.child.cols[plan.positions[i]]: binding[col]
            for i, col in enumerate(plan.cols)
            if col in binding
        }
        getter = _tuple_getter(plan.positions)
        for row in self._iter_bound(plan.child, child_binding):
            yield getter(row)

    def _iter_bound_union(self, plan: Union, binding):
        for part in plan.parts:
            yield from self._iter_bound(part, binding)

    def _iter_bound_join(self, plan: Join, binding):
        lcols = set(plan.left.cols)
        rcols = set(plan.right.cols)
        lbind = {c: v for c, v in binding.items() if c in lcols}
        rbind_base = {c: v for c, v in binding.items() if c in rcols}
        shared = plan.shared
        lpos = [plan.left.cols.index(c) for c in shared]
        width = len(plan.left.cols)
        emit = _tuple_getter(
            [i if side == 0 else width + i for side, i in plan.emit]
        )
        for lrow in self._iter_bound(plan.left, lbind):
            rbind = dict(rbind_base)
            for c, i in zip(shared, lpos):
                rbind[c] = lrow[i]
            for rrow in self._iter_bound(plan.right, rbind):
                yield emit(lrow + rrow)

    def _probe_binding(self, plan: _Binary, lrow: Row):
        shared = plan.shared
        lpos = [plan.left.cols.index(c) for c in shared]
        return {c: lrow[i] for c, i in zip(shared, lpos)}

    def _iter_bound_semi_join(self, plan: SemiJoin, binding):
        for lrow in self._iter_bound(plan.left, binding):
            if self.probe(plan.right, self._probe_binding(plan, lrow)):
                yield lrow

    def _iter_bound_anti_join(self, plan: AntiJoin, binding):
        for lrow in self._iter_bound(plan.left, binding):
            if not self.probe(plan.right, self._probe_binding(plan, lrow)):
                yield lrow

    def _iter_bound_difference(self, plan: Difference, binding):
        cols = plan.cols
        for lrow in self._iter_bound(plan.left, binding):
            if not self.probe(plan.right, dict(zip(cols, lrow))):
                yield lrow

    _HANDLERS = {
        Scan: _run_scan,
        Literal: _run_literal,
        AdomProduct: _run_adom_product,
        AdomGuard: _run_adom_guard,
        AdomEq: _run_adom_eq,
        Select: _run_select,
        Project: _run_project,
        Join: _run_join,
        SemiJoin: _run_semi_join,
        AntiJoin: _run_anti_join,
        Union: _run_union,
        Difference: _run_difference,
    }

    _LAZY_HANDLERS = {
        Scan: _iter_bound_scan,
        Literal: _iter_bound_literal,
        AdomProduct: _iter_bound_adom_product,
        AdomGuard: _iter_bound_adom_guard,
        AdomEq: _iter_bound_adom_eq,
        Select: _iter_bound_select,
        Project: _iter_bound_project,
        Union: _iter_bound_union,
        Join: _iter_bound_join,
        SemiJoin: _iter_bound_semi_join,
        AntiJoin: _iter_bound_anti_join,
        Difference: _iter_bound_difference,
    }


def execute_plan(plan: Plan, db: Database, constants: Sequence = (),
                 profile=None) -> Set[Row]:
    """One-shot execution under ``adom = active_domain(db) | constants``
    (collected lazily — only plans with Adom* nodes touch it)."""
    return Executor(db, None, constants, profile).run(plan)


def execute_plan_nonempty(plan: Plan, db: Database,
                          constants: Sequence = (), profile=None) -> bool:
    """One-shot short-circuit non-emptiness test (see
    :meth:`Executor.nonempty`): the boolean-certainty fast path."""
    return Executor(db, None, constants, profile).nonempty(plan)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def explain(plan: Plan) -> str:
    """A readable indented rendering of a plan tree (``repro plan``)."""
    lines: List[str] = []

    def walk(node: Plan, depth: int) -> None:
        names = ", ".join(v.name for v in node.cols)
        lines.append("  " * depth + f"{node.label()}  -> [{names}]")
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)


def plan_nodes(plan: Plan):
    """Iterate every node of a plan tree (pre-order)."""
    yield plan
    for child in plan.children():
        yield from plan_nodes(child)
