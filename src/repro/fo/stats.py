"""Size and shape metrics for first-order formulas.

Example 6.12 notes that the length of the consistent rewriting of
q_Hall is exponential in the size of the query; experiment E2 measures
this with the metrics below.
"""

from __future__ import annotations

from dataclasses import dataclass

from .formula import And, AtomF, Eq, Exists, Falsum, Forall, Formula, Not, Or, Verum


@dataclass(frozen=True)
class FormulaStats:
    """Counts describing one formula.

    ``negations`` and ``max_or_width`` feed the static cost model of
    :mod:`repro.analysis.cost`: each negation lowers to an anti-join or
    difference, and the widest disjunction bounds the fan-out of the
    plan's Union nodes.
    """

    nodes: int
    atoms: int
    quantifiers: int
    quantifier_depth: int
    connectives: int
    negations: int = 0
    max_or_width: int = 0

    @property
    def size(self) -> int:
        """Total AST node count (the paper's notion of formula length)."""
        return self.nodes


def stats(f: Formula) -> FormulaStats:
    """Compute all metrics in one traversal."""
    if isinstance(f, (Verum, Falsum)):
        return FormulaStats(1, 0, 0, 0, 0)
    if isinstance(f, (AtomF, Eq)):
        return FormulaStats(1, 1, 0, 0, 0)
    if isinstance(f, Not):
        s = stats(f.sub)
        return FormulaStats(s.nodes + 1, s.atoms, s.quantifiers,
                            s.quantifier_depth, s.connectives + 1,
                            s.negations + 1, s.max_or_width)
    if isinstance(f, (And, Or)):
        subs = [stats(s) for s in f.subs]
        width = max(
            (s.max_or_width for s in subs),
            default=0,
        )
        if isinstance(f, Or):
            width = max(width, len(f.subs))
        return FormulaStats(
            1 + sum(s.nodes for s in subs),
            sum(s.atoms for s in subs),
            sum(s.quantifiers for s in subs),
            max((s.quantifier_depth for s in subs), default=0),
            1 + sum(s.connectives for s in subs),
            sum(s.negations for s in subs),
            width,
        )
    if isinstance(f, (Exists, Forall)):
        s = stats(f.sub)
        return FormulaStats(s.nodes + 1, s.atoms, s.quantifiers + len(f.vars),
                            s.quantifier_depth + len(f.vars), s.connectives,
                            s.negations, s.max_or_width)
    raise TypeError(f"not a formula: {f!r}")


def pretty(f: Formula, indent: int = 0) -> str:
    """A human-readable, indented rendering of a formula."""
    pad = "  " * indent
    if isinstance(f, (Verum, Falsum, AtomF, Eq)):
        return pad + repr(f)
    if isinstance(f, Not):
        return pad + "not\n" + pretty(f.sub, indent + 1)
    if isinstance(f, (And, Or)):
        word = "and" if isinstance(f, And) else "or"
        body = "\n".join(pretty(s, indent + 1) for s in f.subs)
        return f"{pad}{word}\n{body}"
    if isinstance(f, (Exists, Forall)):
        word = "exists" if isinstance(f, Exists) else "forall"
        names = " ".join(v.name for v in f.vars)
        return f"{pad}{word} {names}.\n" + pretty(f.sub, indent + 1)
    raise TypeError(f"not a formula: {f!r}")
