"""Lowering NNF formulas to set-at-a-time relational plans.

The consistent rewritings of Algorithm 1 have a very particular shape:
every quantifier is *relation-guarded* — ``exists z (R(..z..) and phi)``
or, in NNF, ``forall z (not R(..z..) or phi)``.  The lowering exploits
exactly that:

* a conjunction is split into **generators** (positive atoms, lowered
  subplans) that are hash-joined into a relation of assignments, and
  **filters** (negated atoms, disequalities, universals) that prune it
  via :class:`~repro.fo.plan.AntiJoin`/:class:`~repro.fo.plan.Select`;
* ``exists`` is a :class:`~repro.fo.plan.Project` of its body's plan;
* ``forall z (not G or phi)`` becomes an anti-join against the relation
  of *violating* assignments ``exists z (G and not phi)`` — relational
  division in set-difference form, with the guard ``G`` generating;
* only variables no generator ranges over fall back to the explicit
  active-domain product, mirroring the ``adom`` CTE of the SQL backend,
  which keeps the lowering total for arbitrary FO input.

The result of a compilation is a :class:`CompiledQuery` whose
:meth:`~CompiledQuery.rows` returns *all* satisfying assignments in one
execution — certain answers without per-candidate re-evaluation — and a
:class:`PlanCache` (LRU, keyed on formula + answer columns + schema
signature) lets repeated queries skip compilation entirely.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.terms import Variable, is_variable
from ..db.database import Database
from .eval import nnf
from .formula import (
    And,
    AtomF,
    Eq,
    Exists,
    Falsum,
    Forall,
    Formula,
    Not,
    Or,
    Verum,
    constants_of,
    free_variables,
    relations_of,
)
from .plan import (
    AdomEq,
    AdomGuard,
    AdomProduct,
    AntiJoin,
    Difference,
    Executor,
    Join,
    Literal,
    Plan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
    execute_plan,
    execute_plan_nonempty,
    explain,
)

Row = Tuple
Cols = Tuple[Variable, ...]


class CompileError(ValueError):
    """Raised on malformed compilation requests."""


class CompiledQuery:
    """A formula lowered to a plan, ready to run on any database.

    ``free`` fixes the order of the answer columns; a sentence has
    ``free == ()`` and is queried with :meth:`holds`.
    """

    __slots__ = ("formula", "free", "plan", "constants")

    def __init__(self, formula: Formula, free: Cols, plan: Plan, constants: Tuple):
        self.formula = formula
        self.free = free
        self.plan = plan
        self.constants = constants

    def rows(self, db: Database, profile=None) -> FrozenSet[Row]:
        """All satisfying assignments over ``free``, in one execution.

        ``profile`` (a :class:`repro.obs.profile.PlanProfile`) turns on
        per-operator observability for this execution.
        """
        return frozenset(execute_plan(self.plan, db, self.constants, profile))

    def holds(self, db: Database, profile=None) -> bool:
        """Truth value of a sentence (a plan over zero columns).

        Evaluated with the executor's short-circuit mode: rows stream
        lazily to the root, so an existential sentence stops at its
        first witness and a universally guarded one at its first
        violation, instead of materializing the full witness relation
        only to ask whether it is empty.

        With ``profile`` the probe path counts per-operator probe and
        index activity, and the root node records the end-to-end time;
        intermediate cardinalities stay zero because short-circuit
        evaluation never materializes them — that absence *is* the
        signal that the probe fast path ran.
        """
        if profile is None:
            return execute_plan_nonempty(self.plan, db, self.constants)
        from time import perf_counter

        executor = Executor(db, None, self.constants, profile)
        t0 = perf_counter()
        result = executor.nonempty(self.plan)
        profile.record(self.plan, perf_counter() - t0, int(result))
        return result

    def explain(self) -> str:
        """Readable plan rendering (see :func:`repro.fo.plan.explain`)."""
        return explain(self.plan)

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.free)
        return f"CompiledQuery[({names})]"


# ----------------------------------------------------------------------
# alpha renaming
# ----------------------------------------------------------------------


def standardize_apart(f: Formula) -> Formula:
    """Rename every bound variable to a globally fresh one.

    The lowering identifies plan columns with variables, so distinct
    binders must use distinct names even where the input nests or
    shadows them (``exists x (R(x) and exists x S(x))``).
    """
    used: Set[str] = set()

    def collect(g: Formula) -> None:
        if isinstance(g, AtomF):
            used.update(v.name for v in g.atom.vars)
        elif isinstance(g, Eq):
            for t in (g.lhs, g.rhs):
                if is_variable(t):
                    used.add(t.name)
        elif isinstance(g, Not):
            collect(g.sub)
        elif isinstance(g, (And, Or)):
            for s in g.subs:
                collect(s)
        elif isinstance(g, (Exists, Forall)):
            used.update(v.name for v in g.vars)
            collect(g.sub)

    collect(f)
    counter = itertools.count()

    def fresh(v: Variable) -> Variable:
        while True:
            name = f"{v.name}@{next(counter)}"
            if name not in used:
                used.add(name)
                return Variable(name)

    def walk(g: Formula, mapping: Dict[Variable, Variable]) -> Formula:
        if isinstance(g, (Verum, Falsum)):
            return g
        if isinstance(g, AtomF):
            terms = tuple(
                mapping.get(t, t) if is_variable(t) else t for t in g.atom.terms
            )
            return AtomF(Atom(g.atom.schema, terms))
        if isinstance(g, Eq):
            lhs = mapping.get(g.lhs, g.lhs) if is_variable(g.lhs) else g.lhs
            rhs = mapping.get(g.rhs, g.rhs) if is_variable(g.rhs) else g.rhs
            return Eq(lhs, rhs)
        if isinstance(g, Not):
            return Not(walk(g.sub, mapping))
        if isinstance(g, And):
            return And(tuple(walk(s, mapping) for s in g.subs))
        if isinstance(g, Or):
            return Or(tuple(walk(s, mapping) for s in g.subs))
        if isinstance(g, (Exists, Forall)):
            renames: Dict[Variable, Variable] = {}
            new_vars: List[Variable] = []
            for v in g.vars:
                if v not in renames:
                    renames[v] = fresh(v)
                new_vars.append(renames[v])
            inner = dict(mapping)
            inner.update(renames)
            return type(g)(tuple(new_vars), walk(g.sub, inner))
        raise TypeError(f"not a formula: {g!r}")

    return walk(f, {})


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------


def _sorted_cols(variables) -> Cols:
    return tuple(sorted(variables))


def _pad(plan: Plan, cols: Cols) -> Plan:
    """Extend a plan to ``cols`` by crossing missing ones with adom."""
    missing = [v for v in cols if v not in plan.cols]
    if missing:
        plan = Join(plan, AdomProduct(_sorted_cols(missing)))
    if plan.cols != cols:
        plan = Project(plan, cols)
    return plan


def _lower_eq(f: Eq) -> Plan:
    lv, rv = is_variable(f.lhs), is_variable(f.rhs)
    if not lv and not rv:
        return Literal((), [()] if f.lhs.value == f.rhs.value else [])
    if lv and rv:
        if f.lhs == f.rhs:
            # x = x holds for every active-domain value of x.
            return AdomProduct((f.lhs,))
        return AdomEq(f.lhs, f.rhs)
    var, const = (f.lhs, f.rhs) if lv else (f.rhs, f.lhs)
    return Literal((var,), [(const.value,)])


def _lower_not(sub: Formula) -> Plan:
    """Standalone complement (NNF guarantees ``sub`` is atomic)."""
    positive = _lower(sub)
    base: Plan = (
        Literal((), [()]) if not positive.cols else AdomProduct(positive.cols)
    )
    return Difference(base, positive)


def _combine(current: Optional[Plan], g: Plan) -> Plan:
    """Conjoin a generator with the accumulated plan."""
    if current is None:
        return g
    if set(g.cols) <= set(current.cols):
        return SemiJoin(current, g)
    if set(current.cols) <= set(g.cols):
        # Join would emit exactly g's columns (current's rows are unique
        # on the shared columns), so filter g instead of pairing rows.
        return SemiJoin(g, current)
    return Join(current, g)


def _flatten_and(subs: Sequence[Formula]) -> List[Formula]:
    out: List[Formula] = []
    for s in subs:
        if isinstance(s, And):
            out.extend(_flatten_and(s.subs))
        else:
            out.append(s)
    return out


def _lower_and(subs: Sequence[Formula], seed: Optional[Plan] = None) -> Plan:
    """Lower a conjunction, *seeded* by the bindings accumulated so far.

    The ``seed`` plan (if any) is a relation of already-established
    bindings for outer variables; every subplan built here is conjoined
    with it, so disjunctions, quantifier bodies, and complements are
    evaluated only over extensions of seed rows — the set-at-a-time
    analogue of the interpreter's environment threading.  Without it,
    a ``not (z = t)`` under an unbound ``t`` would materialize nearly
    all of adom², and an unguarded answer variable would cross the
    whole plan with the active domain.
    """
    flat = _flatten_and(subs)
    free_set: Set[Variable] = set(seed.cols) if seed is not None else set()
    for s in flat:
        free_set |= free_variables(s)
    free = _sorted_cols(free_set)

    cheap: List[Plan] = []
    complex_subs: List[Formula] = []
    eq_filters: List[Eq] = []
    neq_filters: List[Eq] = []
    atom_filters: List[AtomF] = []

    for s in flat:
        if isinstance(s, (Verum, Falsum)):
            cheap.append(_lower(s))
        elif isinstance(s, AtomF):
            cheap.append(Scan(s.atom))
        elif isinstance(s, Eq):
            if is_variable(s.lhs) and is_variable(s.rhs) and s.lhs != s.rhs:
                eq_filters.append(s)
            else:
                cheap.append(_lower_eq(s))
        elif isinstance(s, Not):
            if isinstance(s.sub, AtomF):
                atom_filters.append(s.sub)
            elif isinstance(s.sub, Eq):
                neq_filters.append(s.sub)
            else:  # non-NNF input; fall back to the total complement
                cheap.append(_lower_not(s.sub))
        elif isinstance(s, (Exists, Or, Forall)):
            complex_subs.append(s)
        else:
            raise TypeError(f"not a formula: {s!r}")

    # Join the cheap generators first, most selective first: one-row
    # literals, scans with constant positions, then plain scans.
    def rank(p: Plan) -> Tuple[int, int]:
        if isinstance(p, Literal):
            return (0, 0)
        if isinstance(p, Scan):
            return (1, 0) if p.consts else (2, 0)
        return (3, len(p.cols))

    # Greedy connected join order: always fold in a generator sharing
    # columns with the bindings built so far (most shared wins, rank
    # breaks ties), so a cross product happens only when the conjunction
    # is genuinely disconnected.
    cheap.sort(key=rank)
    current = seed
    while cheap:
        if current is None:
            current = cheap.pop(0)
            continue
        bound = set(current.cols)
        idx, best_shared = 0, -1
        for i, g in enumerate(cheap):
            shared = len(bound & set(g.cols))
            if shared > best_shared:
                idx, best_shared = i, shared
        current = _combine(current, cheap.pop(idx))

    # Quantified and disjunctive conjuncts are folded *with* the
    # current bindings, so their internals stay row-driven.
    for s in complex_subs:
        current = _lower(s, current)

    # An equality with an unbound side ranges that side over the
    # diagonal; once both sides are bound it is a cheap Select.
    pending_eqs: List[Eq] = []
    for e in eq_filters:
        bound = set(current.cols) if current is not None else set()
        if e.lhs not in bound or e.rhs not in bound:
            current = _combine(current, AdomEq(e.lhs, e.rhs))
        pending_eqs.append(e)

    if current is None:
        current = Literal((), [()])
    missing = [v for v in free if v not in current.cols]
    if missing:
        current = Join(current, AdomProduct(_sorted_cols(missing)))

    conds = []
    pos = {c: i for i, c in enumerate(current.cols)}

    def operand(term):
        if is_variable(term):
            return ("col", pos[term])
        return ("const", term.value)

    for e in pending_eqs:
        conds.append((operand(e.lhs), operand(e.rhs), True))
    for e in neq_filters:
        conds.append((operand(e.lhs), operand(e.rhs), False))
    if conds:
        current = Select(current, conds)

    for atom_f in atom_filters:
        current = AntiJoin(current, _lower(atom_f))
    return current


def _lower_or(subs: Sequence[Formula], seed: Optional[Plan] = None) -> Plan:
    if not subs:
        return Literal(seed.cols if seed is not None else (), [])
    free_set: Set[Variable] = set(seed.cols) if seed is not None else set()
    for s in subs:
        free_set |= free_variables(s)
    free = _sorted_cols(free_set)
    return Union([_pad(_lower(s, seed), free) for s in subs])


def _lower_exists(f: Exists, seed: Optional[Plan] = None) -> Plan:
    body_free = free_variables(f.sub)
    out_set = body_free - set(f.vars)
    if seed is not None:
        out_set |= set(seed.cols)
    out_cols = _sorted_cols(out_set)
    plan = _lower(f.sub, seed)
    if plan.cols != out_cols:
        plan = Project(plan, out_cols)
    if any(v not in body_free for v in f.vars):
        # A vacuous quantifier still ranges over the active domain:
        # exists x TRUE is false on an empty domain.
        plan = Join(plan, AdomGuard())
    return plan


def _lower_forall(f: Forall, seed: Optional[Plan] = None) -> Plan:
    """∀ as division in difference form: base minus the assignments
    under which the body fails, both restricted to the seed rows."""
    out_set = free_variables(f.sub) - set(f.vars)
    if seed is not None:
        out_set |= set(seed.cols)
    out_cols = _sorted_cols(out_set)
    violators = _lower(Exists(f.vars, nnf(f.sub, True)), seed)
    if seed is not None:
        base: Plan = _pad(seed, out_cols)
    elif out_cols:
        base = AdomProduct(out_cols)
    else:
        base = Literal((), [()])
    return Difference(base, violators)


def _lower(f: Formula, seed: Optional[Plan] = None) -> Plan:
    if isinstance(f, And):
        return _lower_and(f.subs, seed)
    if isinstance(f, Or):
        return _lower_or(f.subs, seed)
    if isinstance(f, Exists):
        return _lower_exists(f, seed)
    if isinstance(f, Forall):
        return _lower_forall(f, seed)
    if seed is not None:
        return _lower_and((f,), seed)
    if isinstance(f, Verum):
        return Literal((), [()])
    if isinstance(f, Falsum):
        return Literal((), [])
    if isinstance(f, AtomF):
        return Scan(f.atom)
    if isinstance(f, Eq):
        return _lower_eq(f)
    if isinstance(f, Not):
        return _lower_not(f.sub)
    raise TypeError(f"not a formula: {f!r}")


def compile_formula(
    formula: Formula, free: Optional[Sequence[Variable]] = None
) -> CompiledQuery:
    """Compile a formula to a plan over the given answer columns.

    ``free`` defaults to the formula's free variables in sorted order;
    passing a superset ranges the extra columns over the active domain
    (the same convention as the SQL backend's certain-answer SELECT).
    """
    declared = free_variables(formula)
    if free is None:
        out: Cols = _sorted_cols(declared)
    else:
        out = tuple(free)
        if len(set(out)) != len(out):
            raise CompileError("answer columns must be distinct")
        extra = declared - set(out)
        if extra:
            raise CompileError(
                f"formula has free variables outside the answer columns: "
                f"{sorted(v.name for v in extra)}"
            )
    plan = _pad(_lower(standardize_apart(nnf(formula))), out)
    constants = tuple(sorted({c.value for c in constants_of(formula)}, key=repr))
    if verify_plans_enabled():
        from ..analysis.verifier import verify_plan

        verify_plan(plan, expected_cols=out)
    return CompiledQuery(formula, out, plan, constants)


def verify_plans_enabled() -> bool:
    """Should every compiled plan run the IR verifier?

    Controlled by ``REPRO_VERIFY_PLANS`` — on for any value other than
    ``""``/``0``/``false``/``no``/``off``.  Off by default in
    production (compilation stays allocation-only); tests and CI turn
    it on so every plan the suites compile is checked against the
    PV001–PV013 invariants of :mod:`repro.analysis.verifier`.
    """
    raw = os.environ.get("REPRO_VERIFY_PLANS", "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------


class PlanCache:
    """An LRU cache of :class:`CompiledQuery` objects.

    Keyed on (formula, answer columns, schema signature): re-running the
    same rewriting on databases with the same relation signatures skips
    compilation; a schema change (different arity or key) misses and
    recompiles.  Counters make cache behaviour observable
    (:meth:`stats`), which the engine exposes as its stats hook.

    **Fork safety.**  The cache is plain per-process state: a worker
    forked by :mod:`repro.parallel` inherits a snapshot of the parent's
    entries (so pre-compiled plans are hits with no recompilation), but
    from that point the two caches evolve independently — worker-side
    hits/misses never appear in the parent's :meth:`stats`, and vice
    versa.  The pool ships worker-side counter deltas back with each
    result; they are accumulated under ``worker_plan_cache`` in the
    ``parallel`` section of ``engine.metrics()``.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_entries")

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict" = OrderedDict()

    @staticmethod
    def _signature(formula: Formula, db: Database) -> Tuple:
        sig: List[Tuple] = []
        for name in sorted(relations_of(formula)):
            schema = db.schemas.get(name)
            if schema is None:
                sig.append((name, None))
            else:
                sig.append((name, schema.arity, schema.key_size))
        return tuple(sig)

    def get_or_compile(
        self,
        formula: Formula,
        db: Database,
        free: Optional[Sequence[Variable]] = None,
    ) -> CompiledQuery:
        """The cached plan for (formula, free, db-schema), compiling on miss."""
        out = tuple(free) if free is not None else _sorted_cols(free_variables(formula))
        key = (formula, out, self._signature(formula, db))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = compile_formula(formula, out)
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def stats(self) -> Dict[str, int]:
        """Counters hook: hits/misses/evictions and current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide default cache used by the certainty engine.
plan_cache = PlanCache()
