"""A small text syntax for sjfBCQ¬ queries.

Grammar::

    query   := literal (',' literal)*
    literal := ['not' | '!' | '¬'] atom
             | diseq
    atom    := NAME '(' terms ['|' terms] ')'
    diseq   := term '!=' term
             | '(' terms ')' '!=' '(' terms ')'
    terms   := [term (',' term)*]
    term    := NAME            (a variable, lowercase-or-not)
             | INTEGER         (an integer constant)
             | 'text'          (a string constant, single quotes)
             | "text"          (a string constant, double quotes)

The '|' separates primary-key positions from the rest — the textual
stand-in for the paper's underlining.  Without '|', every position is a
key (an all-key atom).  Disequalities are the sjfBCQ¬≠ constraints of
Definition 6.3: a tuple form ``(x, y) != ('a', 'b')`` means "not both
equal".

Examples::

    parse_query("R(x | y), not S(y | x)")            # the paper's q1
    parse_query("P(x | y), not N('c' | y)")          # the paper's q3
    parse_query("Likes(p, t), not Lives(p | t), not Mayor(t | p)")
    parse_query("R(x | y, z), (y, z) != ('a', 'b')")
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional, Tuple

from .atoms import Atom, RelationSchema
from .query import Diseq, Query, QueryError
from .terms import Constant, Term, Variable


class ParseError(ValueError):
    """Raised on malformed query text."""


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<neq>!=)
  | (?P<not>(?:not\b|!|¬))
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>-?\d+)
  | (?P<str>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<punct>[(),|])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        kind = match.lastgroup
        if kind != "ws":
            yield _Token(kind, match.group(), position)
        position = match.end()
    yield _Token("eof", "", position)


class _Parser:
    def __init__(self, text: str):
        self.tokens = list(_tokenize(text))
        self.index = 0

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self.advance()
        if token.kind != kind or (value is not None and token.value != value):
            raise ParseError(
                f"expected {value or kind} at offset {token.position}, "
                f"got {token.value!r}"
            )
        return token

    # ------------------------------------------------------------------

    def parse_query(self) -> Query:
        positives: List[Atom] = []
        negatives: List[Atom] = []
        diseqs: List["Diseq"] = []
        while True:
            literal = self.parse_literal()
            if isinstance(literal, Diseq):
                diseqs.append(literal)
            else:
                negated, atom_obj = literal
                (negatives if negated else positives).append(atom_obj)
            token = self.peek()
            if token.kind == "eof":
                break
            self.expect("punct", ",")
        try:
            return Query(positives, negatives, diseqs)
        except QueryError as exc:
            raise ParseError(str(exc)) from exc

    def parse_literal(self):
        """A literal: negated/positive atom, or a disequality."""
        if self.peek().kind == "not":
            self.advance()
            return True, self.parse_atom()
        if self._at_diseq():
            return self.parse_diseq()
        return False, self.parse_atom()

    def _at_diseq(self) -> bool:
        """Lookahead: does a disequality start here?

        Either ``term != ...`` or ``( terms ) != ...``.
        """
        token = self.peek()
        if token.kind in ("int", "str"):
            return True
        if token.kind == "name":
            nxt = self.tokens[self.index + 1]
            return nxt.kind == "neq"
        if token.value == "(":
            depth = 0
            i = self.index
            while i < len(self.tokens):
                probe = self.tokens[i]
                if probe.value == "(":
                    depth += 1
                elif probe.value == ")":
                    depth -= 1
                    if depth == 0:
                        return (i + 1 < len(self.tokens)
                                and self.tokens[i + 1].kind == "neq")
                elif probe.kind == "eof":
                    break
                i += 1
            return False
        return False

    def parse_diseq(self) -> Diseq:
        lhs = self._parse_term_tuple()
        self.expect("neq")
        rhs = self._parse_term_tuple()
        if len(lhs) != len(rhs):
            raise ParseError(
                f"disequality sides have different lengths: "
                f"{len(lhs)} vs {len(rhs)}"
            )
        return Diseq(tuple(zip(lhs, rhs)))

    def _parse_term_tuple(self) -> List[Term]:
        if self.peek().value == "(":
            self.advance()
            terms = self.parse_terms(stop={")"})
            self.expect("punct", ")")
            if not terms:
                raise ParseError("empty tuple in disequality")
            return terms
        return [self.parse_term()]

    def parse_atom(self) -> Atom:
        name = self.expect("name").value
        self.expect("punct", "(")
        key_terms = self.parse_terms(stop={"|", ")"})
        if self.peek().value == "|":
            self.advance()
            value_terms = self.parse_terms(stop={")"})
        else:
            value_terms = []
        self.expect("punct", ")")
        arity = len(key_terms) + len(value_terms)
        if not key_terms:
            raise ParseError(f"atom {name} needs at least one key position")
        schema = RelationSchema(name, arity, len(key_terms))
        return Atom(schema, tuple(key_terms) + tuple(value_terms))

    def parse_terms(self, stop) -> List[Term]:
        terms: List[Term] = []
        if self.peek().value in stop:
            return terms
        while True:
            terms.append(self.parse_term())
            if self.peek().value == ",":
                self.advance()
                continue
            if self.peek().value in stop:
                return terms
            token = self.peek()
            raise ParseError(
                f"expected ',' or one of {sorted(stop)} at offset "
                f"{token.position}, got {token.value!r}"
            )

    def parse_term(self) -> Term:
        token = self.advance()
        if token.kind == "name":
            return Variable(token.value)
        if token.kind == "int":
            return Constant(int(token.value))
        if token.kind == "str":
            raw = token.value[1:-1]
            return Constant(re.sub(r"\\(.)", r"\1", raw))
        raise ParseError(
            f"expected a term at offset {token.position}, got {token.value!r}"
        )


def parse_query(text: str) -> Query:
    """Parse a query from its text form (see module docstring)."""
    return _Parser(text).parse_query()


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"R(x | y)"``."""
    parser = _Parser(text)
    atom_obj = parser.parse_atom()
    parser.expect("eof")
    return atom_obj


def query_to_text(query: Query) -> str:
    """Render a query back into parseable text (inverse of parse_query
    for variable/int/str terms)."""
    def term_text(t: Term) -> str:
        if isinstance(t, Variable):
            return t.name
        if isinstance(t.value, int) and not isinstance(t.value, bool):
            return str(t.value)
        if isinstance(t.value, str):
            escaped = t.value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        raise ValueError(f"cannot render constant {t.value!r}")

    def atom_text(a: Atom) -> str:
        key = ", ".join(term_text(t) for t in a.key_terms)
        rest = ", ".join(term_text(t) for t in a.value_terms)
        inner = f"{key} | {rest}" if rest else key
        return f"{a.relation}({inner})"

    def diseq_text(d: Diseq) -> str:
        lhs = ", ".join(term_text(l) for l, _ in d.pairs)
        rhs = ", ".join(term_text(r) for _, r in d.pairs)
        if len(d.pairs) == 1:
            return f"{lhs} != {rhs}"
        return f"({lhs}) != ({rhs})"

    parts = [atom_text(a) for a in query.positives]
    parts += [f"not {atom_text(a)}" for a in query.negatives]
    parts += [diseq_text(d) for d in query.diseqs]
    return ", ".join(parts)
