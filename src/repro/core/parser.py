"""A small text syntax for sjfBCQ¬ queries.

Grammar::

    query   := literal (',' literal)*
    literal := ['not' | '!' | '¬'] atom
             | diseq
    atom    := NAME '(' terms ['|' terms] ')'
    diseq   := term '!=' term
             | '(' terms ')' '!=' '(' terms ')'
    terms   := [term (',' term)*]
    term    := NAME            (a variable, lowercase-or-not)
             | INTEGER         (an integer constant)
             | 'text'          (a string constant, single quotes)
             | "text"          (a string constant, double quotes)

The '|' separates primary-key positions from the rest — the textual
stand-in for the paper's underlining.  Without '|', every position is a
key (an all-key atom).  Disequalities are the sjfBCQ¬≠ constraints of
Definition 6.3: a tuple form ``(x, y) != ('a', 'b')`` means "not both
equal".

Every atom and term carries a source :class:`~repro.core.spans.Span`, so
parse errors and lint diagnostics (:mod:`repro.lint`) can point at the
offending text with ``line:column`` precision.  :func:`parse_query`
returns a bare :class:`Query`; :func:`parse_query_spanned` additionally
exposes the span table and supports error recovery for the linter.

Examples::

    parse_query("R(x | y), not S(y | x)")            # the paper's q1
    parse_query("P(x | y), not N('c' | y)")          # the paper's q3
    parse_query("Likes(p, t), not Lives(p | t), not Mayor(t | p)")
    parse_query("R(x | y, z), (y, z) != ('a', 'b')")
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import AbstractSet, Iterator, List, NamedTuple, Optional, Tuple

from .atoms import Atom, RelationSchema
from .query import Diseq, Query, QueryError
from .spans import SourceText, Span
from .terms import Constant, Term, Variable


class ParseError(ValueError):
    """Raised on malformed query text.

    Carries the offending :class:`Span` and the :class:`SourceText` when
    known; ``str()`` is a single line reporting ``line:column`` and the
    offending source excerpt, and :meth:`pretty` renders a multi-line
    caret diagnostic.
    """

    def __init__(
        self,
        message: str,
        span: Optional[Span] = None,
        source: Optional[SourceText] = None,
    ):
        super().__init__(message)
        self.message = message
        self.span = span
        self.source = source
        self.line: Optional[int] = None
        self.column: Optional[int] = None
        if span is not None and source is not None:
            self.line, self.column = source.position(span.start)

    def __str__(self) -> str:
        if self.span is None or self.source is None:
            return self.message
        near = self.source.snippet(
            Span(self.span.start, max(self.span.end, self.span.start + 12))
        )
        position = f"line {self.line}, column {self.column}"
        if near:
            return f"{position}: {self.message} (near {near!r})"
        return f"{position}: {self.message}"

    def pretty(self) -> str:
        """Multi-line rendering with a caret-underlined source excerpt."""
        if self.span is None or self.source is None:
            return self.message
        lines = [f"error: {self.message}", f"  --> line {self.line}, column {self.column}"]
        lines += self.source.excerpt_lines(self.span, indent="  ")
        return "\n".join(lines)


class _Token(NamedTuple):
    kind: str
    value: str
    position: int
    end: int

    @property
    def span(self) -> Span:
        return Span(self.position, self.end)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<neq>!=)
  | (?P<not>(?:not\b|!|¬))
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>-?\d+)
  | (?P<str>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<punct>[(),|])
    """,
    re.VERBOSE,
)


def _tokenize(text: str, source: SourceText) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}",
                span=Span(position, position + 1),
                source=source,
            )
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            yield _Token(kind, match.group(), position, match.end())
        position = match.end()
    yield _Token("eof", "", position, position)


# ----------------------------------------------------------------------
# spanned parse results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ParsedLiteral:
    """A positive or negated atom with its source spans.

    ``term_spans`` aligns with ``atom.terms`` (key terms first).  When
    the literal was recovered from an empty-key atom (``empty_key``),
    every position of the recovered schema is treated as a key.
    """

    negated: bool
    atom: Atom
    span: Span
    atom_span: Span
    name_span: Span
    term_spans: Tuple[Span, ...]
    empty_key: bool = False


@dataclass(frozen=True)
class ParsedDiseq:
    """A disequality constraint with its source spans.

    ``pair_spans`` aligns with ``diseq.pairs``: one ``(lhs, rhs)`` span
    pair per term pair.
    """

    diseq: Diseq
    span: Span
    pair_spans: Tuple[Tuple[Span, Span], ...]


@dataclass(frozen=True)
class ParseProblem:
    """A syntax problem the recovering parser noted without aborting."""

    code: str
    message: str
    span: Span


@dataclass
class ParsedQuery:
    """A parsed query together with its source-span table.

    The :class:`Query` object itself is built on demand, because the
    linter must be able to inspect queries that :class:`Query` would
    reject outright (self-joins, unsafe variables).
    """

    text: str
    source: SourceText
    literals: List[ParsedLiteral] = field(default_factory=list)
    diseqs: List[ParsedDiseq] = field(default_factory=list)
    problems: List[ParseProblem] = field(default_factory=list)

    @property
    def positives(self) -> List[ParsedLiteral]:
        return [lit for lit in self.literals if not lit.negated]

    @property
    def negatives(self) -> List[ParsedLiteral]:
        return [lit for lit in self.literals if lit.negated]

    def build_query(self, check_safety: bool = True) -> Query:
        """Construct the :class:`Query`; raises :class:`QueryError` when
        the literal set violates a structural requirement."""
        return Query(
            [lit.atom for lit in self.positives],
            [lit.atom for lit in self.negatives],
            [d.diseq for d in self.diseqs],
            check_safety=check_safety,
        )

    def try_query(self) -> Optional[Query]:
        """The :class:`Query`, or None when it cannot be built (the lint
        rules report the reason with a coded diagnostic instead)."""
        try:
            return self.build_query(check_safety=False)
        except QueryError:
            return None


class _Parser:
    def __init__(self, text: str, recover: bool = False):
        self.source = SourceText(text)
        self.tokens = list(_tokenize(text, self.source))
        self.index = 0
        self.recover = recover
        self.problems: List[ParseProblem] = []

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self.advance()
        if token.kind != kind or (value is not None and token.value != value):
            what = value or kind
            got = token.value if token.kind != "eof" else "end of input"
            raise ParseError(
                f"expected {what!r}, got {got!r}",
                span=token.span,
                source=self.source,
            )
        return token

    def error(self, message: str, span: Span) -> ParseError:
        return ParseError(message, span=span, source=self.source)

    # ------------------------------------------------------------------

    def parse_spanned(self) -> ParsedQuery:
        parsed = ParsedQuery(self.source.text, self.source)
        while True:
            literal = self.parse_literal()
            if isinstance(literal, ParsedDiseq):
                parsed.diseqs.append(literal)
            elif literal is not None:
                parsed.literals.append(literal)
            token = self.peek()
            if token.kind == "eof":
                break
            self.expect("punct", ",")
        parsed.problems = list(self.problems)
        return parsed

    def parse_query(self) -> Query:
        parsed = self.parse_spanned()
        try:
            return parsed.build_query()
        except QueryError as exc:
            raise ParseError(str(exc)) from exc

    def parse_literal(self) -> "Union[ParsedLiteral, ParsedDiseq, None]":
        """A literal: negated/positive atom (as :class:`ParsedLiteral`),
        a :class:`ParsedDiseq`, or None after recovery."""
        if self.peek().kind == "not":
            not_token = self.advance()
            atom_parsed = self.parse_atom_spanned()
            if atom_parsed is None:
                return None
            return ParsedLiteral(
                negated=True,
                atom=atom_parsed.atom,
                span=not_token.span.union(atom_parsed.span),
                atom_span=atom_parsed.atom_span,
                name_span=atom_parsed.name_span,
                term_spans=atom_parsed.term_spans,
                empty_key=atom_parsed.empty_key,
            )
        if self._at_diseq():
            return self.parse_diseq_spanned()
        return self.parse_atom_spanned()

    def _at_diseq(self) -> bool:
        """Lookahead: does a disequality start here?

        Either ``term != ...`` or ``( terms ) != ...``.
        """
        token = self.peek()
        if token.kind in ("int", "str"):
            return True
        if token.kind == "name":
            nxt = self.tokens[self.index + 1]
            return nxt.kind == "neq"
        if token.value == "(":
            depth = 0
            i = self.index
            while i < len(self.tokens):
                probe = self.tokens[i]
                if probe.value == "(":
                    depth += 1
                elif probe.value == ")":
                    depth -= 1
                    if depth == 0:
                        return (i + 1 < len(self.tokens)
                                and self.tokens[i + 1].kind == "neq")
                elif probe.kind == "eof":
                    break
                i += 1
            return False
        return False

    def parse_diseq_spanned(self) -> ParsedDiseq:
        start = self.peek().span
        lhs = self._parse_term_tuple()
        self.expect("neq")
        rhs = self._parse_term_tuple()
        end = self.tokens[self.index - 1].span
        span = start.union(end)
        if len(lhs) != len(rhs):
            raise self.error(
                f"disequality sides have different lengths: "
                f"{len(lhs)} vs {len(rhs)}",
                span,
            )
        diseq = Diseq(tuple((lt, rt) for (lt, _), (rt, _) in zip(lhs, rhs)))
        pair_spans = tuple(
            (ls, rs) for (_, ls), (_, rs) in zip(lhs, rhs)
        )
        return ParsedDiseq(diseq, span, pair_spans)

    def _parse_term_tuple(self) -> List[Tuple[Term, Span]]:
        if self.peek().value == "(":
            open_token = self.advance()
            terms = self.parse_terms(stop={")"})
            close = self.expect("punct", ")")
            if not terms:
                raise self.error(
                    "empty tuple in disequality",
                    open_token.span.union(close.span),
                )
            return terms
        return [self.parse_term_spanned()]

    def parse_atom_spanned(self) -> Optional[ParsedLiteral]:
        name_token = self.expect("name")
        name = name_token.value
        self.expect("punct", "(")
        key_terms = self.parse_terms(stop={"|", ")"})
        had_bar = self.peek().value == "|"
        if had_bar:
            self.advance()
            value_terms = self.parse_terms(stop={")"})
        else:
            value_terms = []
        close = self.expect("punct", ")")
        span = name_token.span.union(close.span)
        empty_key = False
        if not key_terms:
            message = f"atom {name} needs at least one key position"
            if not self.recover:
                raise self.error(message, span)
            # Recovery for the linter: report QL010 and carry on with an
            # all-key schema over the remaining terms (or drop the atom
            # entirely when it has no terms at all).
            self.problems.append(ParseProblem("QL010", message, span))
            empty_key = True
            key_terms, value_terms = value_terms, []
            if not key_terms:
                return None
        terms = [t for t, _ in key_terms] + [t for t, _ in value_terms]
        spans = tuple(s for _, s in key_terms) + tuple(s for _, s in value_terms)
        schema = RelationSchema(name, len(terms), len(key_terms))
        return ParsedLiteral(
            negated=False,
            atom=Atom(schema, terms),
            span=span,
            atom_span=span,
            name_span=name_token.span,
            term_spans=spans,
            empty_key=empty_key,
        )

    def parse_terms(self, stop: AbstractSet[str]) -> List[Tuple[Term, Span]]:
        terms: List[Tuple[Term, Span]] = []
        if self.peek().value in stop:
            return terms
        while True:
            terms.append(self.parse_term_spanned())
            if self.peek().value == ",":
                self.advance()
                continue
            if self.peek().value in stop:
                return terms
            token = self.peek()
            got = token.value if token.kind != "eof" else "end of input"
            raise self.error(
                f"expected ',' or one of {sorted(stop)}, got {got!r}",
                token.span,
            )

    def parse_term_spanned(self) -> Tuple[Term, Span]:
        token = self.advance()
        if token.kind == "name":
            return Variable(token.value), token.span
        if token.kind == "int":
            return Constant(int(token.value)), token.span
        if token.kind == "str":
            raw = token.value[1:-1]
            return Constant(re.sub(r"\\(.)", r"\1", raw)), token.span
        got = token.value if token.kind != "eof" else "end of input"
        raise self.error(f"expected a term, got {got!r}", token.span)


def parse_query(text: str) -> Query:
    """Parse a query from its text form (see module docstring)."""
    return _Parser(text).parse_query()


def parse_query_spanned(text: str, recover: bool = False) -> ParsedQuery:
    """Parse a query keeping the source-span table.

    With ``recover=True`` (the linter's mode) empty-key atoms do not
    abort the parse; they are reported in ``ParsedQuery.problems`` with
    code ``QL010`` instead.
    """
    return _Parser(text, recover=recover).parse_spanned()


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"R(x | y)"``."""
    parser = _Parser(text)
    lit = parser.parse_atom_spanned()
    parser.expect("eof")
    assert lit is not None
    return lit.atom


def query_to_text(query: Query) -> str:
    """Render a query back into parseable text (inverse of parse_query
    for variable/int/str terms)."""
    def term_text(t: Term) -> str:
        if isinstance(t, Variable):
            return t.name
        assert isinstance(t, Constant)
        if isinstance(t.value, int) and not isinstance(t.value, bool):
            return str(t.value)
        if isinstance(t.value, str):
            escaped = t.value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        raise ValueError(f"cannot render constant {t.value!r}")

    def atom_text(a: Atom) -> str:
        key = ", ".join(term_text(t) for t in a.key_terms)
        rest = ", ".join(term_text(t) for t in a.value_terms)
        inner = f"{key} | {rest}" if rest else key
        return f"{a.relation}({inner})"

    def diseq_text(d: Diseq) -> str:
        lhs = ", ".join(term_text(left) for left, _ in d.pairs)
        rhs = ", ".join(term_text(right) for _, right in d.pairs)
        if len(d.pairs) == 1:
            return f"{lhs} != {rhs}"
        return f"({lhs}) != ({rhs})"

    parts = [atom_text(a) for a in query.positives]
    parts += [f"not {atom_text(a)}" for a in query.negatives]
    parts += [diseq_text(d) for d in query.diseqs]
    return ", ".join(parts)
