"""Self-join-free Boolean conjunctive queries with negated atoms.

A query in sjfBCQ¬ is a set of literals

    q = {F_1, ..., F_l, ¬F_{l+1}, ..., ¬F_m}

subject to *self-join-freeness* (no two atoms share a relation name) and
*safety* (every variable of a negated atom occurs in a positive atom).

This module also implements the extension sjfBCQ¬≠ of Definition 6.3:
queries may carry disequality constraints ``v⃗ ≠ c⃗``, generalized here to
``Diseq`` constraints over arbitrary term sequences (the rewriting of
Lemma 6.1 compares universally quantified tuple positions against the
value terms of an eliminated atom, which may contain constants and
repeated variables).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

from .atoms import Atom
from .terms import Term, Variable, is_variable, variables_of


class QueryError(ValueError):
    """Raised when a query violates a structural requirement."""


class Diseq:
    """A disequality constraint: NOT (lhs_1 = rhs_1 AND ... AND lhs_k = rhs_k).

    Definition 6.3 writes this as ``v⃗ ≠ c⃗`` with ``v⃗`` distinct
    variables and ``c⃗`` constants; the rewriting construction needs the
    slightly more general pairwise form, which we support directly.
    """

    __slots__ = ("pairs",)

    def __init__(self, pairs: Iterable[Tuple[Term, Term]]):
        pairs = tuple((lhs, rhs) for lhs, rhs in pairs)
        if not pairs:
            raise QueryError("a disequality needs at least one pair")
        self.pairs = pairs

    @property
    def vars(self) -> frozenset:
        """All variables occurring on either side."""
        terms = [t for pair in self.pairs for t in pair]
        return variables_of(terms)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Diseq":
        """Apply a substitution to both sides of every pair."""
        def sub(t: Term) -> Term:
            return mapping.get(t, t) if is_variable(t) else t

        return Diseq(tuple((sub(lhs), sub(rhs)) for lhs, rhs in self.pairs))

    @property
    def is_ground(self) -> bool:
        """True when no variables remain."""
        return not self.vars

    def ground_value(self) -> bool:
        """Evaluate a ground disequality: True iff some pair differs."""
        if not self.is_ground:
            raise QueryError(f"disequality {self} is not ground")
        return any(lhs != rhs for lhs, rhs in self.pairs)

    def __repr__(self) -> str:
        lhs = ",".join(str(pair[0]) for pair in self.pairs)
        rhs = ",".join(str(pair[1]) for pair in self.pairs)
        return f"({lhs}) != ({rhs})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Diseq) and self.pairs == other.pairs

    def __hash__(self) -> int:
        return hash(("Diseq", self.pairs))


class Query:
    """A query in sjfBCQ¬ (optionally with disequalities: sjfBCQ¬≠).

    Attributes
    ----------
    positives:
        q⁺, the tuple of non-negated atoms, in a fixed order.
    negatives:
        q⁻, the tuple of atoms occurring negated.
    diseqs:
        the disequality constraints (empty for plain sjfBCQ¬).
    """

    __slots__ = ("positives", "negatives", "diseqs", "_vars")

    def __init__(
        self,
        positives: Iterable[Atom] = (),
        negatives: Iterable[Atom] = (),
        diseqs: Iterable[Diseq] = (),
        check_safety: bool = True,
    ):
        self.positives = tuple(positives)
        self.negatives = tuple(negatives)
        self.diseqs = tuple(diseqs)
        self._vars: Optional[frozenset] = None

        names = [a.relation for a in self.atoms]
        if len(names) != len(set(names)):
            raise QueryError(f"query has a self-join: relation names {names}")
        if check_safety and not self.is_safe:
            raise QueryError(
                "query violates the safety condition: every variable of a "
                "negated atom (or disequality) must occur in a positive atom"
            )

    # ------------------------------------------------------------------
    # structural views
    # ------------------------------------------------------------------

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """q⁺ ∪ q⁻ as a tuple (positives first)."""
        return self.positives + self.negatives

    @property
    def vars(self) -> frozenset:
        """vars(q): all variables occurring in the query."""
        if self._vars is None:
            vs = frozenset()
            for a in self.atoms:
                vs |= a.vars
            for d in self.diseqs:
                vs |= d.vars
            self._vars = vs
        return self._vars

    @property
    def positive_vars(self) -> frozenset:
        """Variables occurring in some positive atom."""
        vs = frozenset()
        for a in self.positives:
            vs |= a.vars
        return vs

    @property
    def relations(self) -> Tuple[str, ...]:
        """All relation names mentioned by the query."""
        return tuple(a.relation for a in self.atoms)

    @property
    def is_safe(self) -> bool:
        """Safety: vars of negated atoms and disequalities occur positively."""
        pos = self.positive_vars
        for a in self.negatives:
            if not a.vars <= pos:
                return False
        for d in self.diseqs:
            if not d.vars <= pos:
                return False
        return True

    @property
    def is_boolean(self) -> bool:
        """All queries in this library are Boolean (no free variables)."""
        return True

    def is_positive(self, a: Atom) -> bool:
        """True when *a* occurs non-negated in the query."""
        return a in self.positives

    def is_negative(self, a: Atom) -> bool:
        """True when *a* occurs negated in the query."""
        return a in self.negatives

    def atom_for(self, relation: str) -> Atom:
        """The unique atom with the given relation name."""
        for a in self.atoms:
            if a.relation == relation:
                return a
        raise KeyError(f"no atom with relation name {relation!r}")

    # ------------------------------------------------------------------
    # guardedness (Section 3)
    # ------------------------------------------------------------------

    def _pairs_coexist_positively(self, terms_vars: frozenset) -> bool:
        vars_list = sorted(terms_vars)
        for i, x in enumerate(vars_list):
            for y in vars_list[i:]:
                if not any(
                    x in p.vars and y in p.vars for p in self.positives
                ):
                    return False
        return True

    @property
    def has_guarded_negation(self) -> bool:
        """Guarded: for every N ∈ q⁻ some P ∈ q⁺ has vars(N) ⊆ vars(P)."""
        for n in self.negatives:
            if not any(n.vars <= p.vars for p in self.positives):
                return False
        return True

    @property
    def has_weakly_guarded_negation(self) -> bool:
        """Weakly guarded: co-occurring variables of a negated atom (or
        disequality, Definition 6.3) co-occur in some positive atom."""
        for n in self.negatives:
            if not self._pairs_coexist_positively(n.vars):
                return False
        for d in self.diseqs:
            if not self._pairs_coexist_positively(d.vars):
                return False
        return True

    # ------------------------------------------------------------------
    # rewriting helpers
    # ------------------------------------------------------------------

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Query":
        """q_[x⃗ ↦ c⃗]: replace variables throughout the query.

        Safety is not re-checked: substituting constants can only remove
        variables, which preserves safety.
        """
        return Query(
            tuple(a.substitute(mapping) for a in self.positives),
            tuple(a.substitute(mapping) for a in self.negatives),
            tuple(d.substitute(mapping) for d in self.diseqs),
            check_safety=False,
        )

    def without(self, atom_obj: Atom) -> "Query":
        """The query q \\ {F, ¬F}: drop the literal for *atom_obj*."""
        return Query(
            tuple(a for a in self.positives if a != atom_obj),
            tuple(a for a in self.negatives if a != atom_obj),
            self.diseqs,
            check_safety=False,
        )

    def with_diseq(self, d: Diseq) -> "Query":
        """Add a disequality constraint."""
        return Query(
            self.positives, self.negatives, self.diseqs + (d,), check_safety=False
        )

    def without_diseq(self, d: Diseq) -> "Query":
        """Drop one disequality constraint."""
        rest = list(self.diseqs)
        rest.remove(d)
        return Query(self.positives, self.negatives, tuple(rest), check_safety=False)

    @property
    def all_atoms_all_key(self) -> bool:
        """Base case of Algorithm 1: every atom of q⁺ ∪ q⁻ is all-key."""
        return all(a.is_all_key for a in self.atoms)

    @property
    def non_all_key_count(self) -> int:
        """α(q): the number of atoms that are not all-key (Lemma 6.1)."""
        return sum(1 for a in self.atoms if not a.is_all_key)

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.positives]
        parts += [f"~{a!r}" for a in self.negatives]
        parts += [repr(d) for d in self.diseqs]
        return "{" + ", ".join(parts) + "}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Query)
            and self.positives == other.positives
            and self.negatives == other.negatives
            and self.diseqs == other.diseqs
        )

    def __hash__(self) -> int:
        return hash((self.positives, self.negatives, self.diseqs))
