"""The decision procedure of Theorem 4.3.

Given q ∈ sjfBCQ¬ with weakly-guarded negation:

* attack graph acyclic  → CERTAINTY(q) is in FO (a consistent
  first-order rewriting exists and can be constructed);
* attack graph cyclic   → CERTAINTY(q) is L-hard, hence not in FO.
  By Lemma 4.9 a cyclic attack graph contains a cycle of length two;
  depending on how many of the two atoms are negated, hardness follows
  from Lemma 5.5 (zero, L-hard), Lemma 5.6 (one, NL-hard), or Lemma 5.7
  (two, L-hard).

When negation is not weakly guarded the dichotomy does not apply
(Section 7): acyclicity is neither necessary nor sufficient.  The
classifier still reports NOT_IN_FO when a two-cycle involves at least one
positive atom, because Lemmas 5.5 and 5.6 do not use the weak-guardedness
hypothesis; everything else is reported as UNDECIDED.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from .attack_graph import AttackGraph
from .atoms import Atom
from .query import Query


class Verdict(enum.Enum):
    """Outcome of the classification."""

    IN_FO = "in FO"
    NOT_IN_FO = "not in FO"
    UNDECIDED = "undecided (negation not weakly guarded)"


class Hardness(enum.Enum):
    """Lower bound witnessed by the classifier's certificate."""

    NONE = "none"
    L_HARD = "L-hard"
    NL_HARD = "NL-hard"


@dataclass(frozen=True)
class Classification:
    """Full result of classifying a query.

    Attributes
    ----------
    query: the classified query.
    verdict: IN_FO, NOT_IN_FO, or UNDECIDED.
    hardness: the lower bound certified when not in FO.
    weakly_guarded: whether negation in the query is weakly guarded.
    guarded: whether negation in the query is guarded.
    acyclic: whether the attack graph is acyclic.
    cycle: a directed cycle of the attack graph, when one exists.
    two_cycle: a two-cycle, when one exists (Lemma 4.9 guarantees one
        for cyclic weakly-guarded queries).
    reason: human-readable justification naming the lemma applied.
    """

    query: Query
    verdict: Verdict
    hardness: Hardness
    weakly_guarded: bool
    guarded: bool
    acyclic: bool
    cycle: Optional[Tuple[Atom, ...]] = None
    two_cycle: Optional[Tuple[Atom, Atom]] = None
    reason: str = ""

    @property
    def in_fo(self) -> bool:
        """Convenience: True exactly when the verdict is IN_FO."""
        return self.verdict is Verdict.IN_FO


def _negated_count(query: Query, pair: Tuple[Atom, Atom]) -> int:
    return sum(1 for a in pair if query.is_negative(a))


def classify(query: Query, graph: Optional[AttackGraph] = None) -> Classification:
    """Decide membership of CERTAINTY(q) in FO per Theorem 4.3."""
    graph = graph or AttackGraph(query)
    wg = query.has_weakly_guarded_negation
    guarded = query.has_guarded_negation
    cycle = graph.find_cycle()
    two_cycle = graph.find_two_cycle()

    if cycle is None:
        if wg:
            return Classification(
                query, Verdict.IN_FO, Hardness.NONE, wg, guarded, True,
                reason="attack graph acyclic and negation weakly guarded "
                       "(Theorem 4.3(2) / Lemma 6.1)",
            )
        return Classification(
            query, Verdict.UNDECIDED, Hardness.NONE, wg, guarded, True,
            reason="attack graph acyclic but negation not weakly guarded; "
                   "acyclicity is not sufficient beyond weak guardedness "
                   "(Section 7)",
        )

    if wg:
        # Lemma 4.9: a two-cycle must exist.
        assert two_cycle is not None, "Lemma 4.9 violated: cyclic but no 2-cycle"
        negated = _negated_count(query, two_cycle)
        if negated == 0:
            hardness, lemma = Hardness.L_HARD, "Lemma 5.5"
        elif negated == 1:
            hardness, lemma = Hardness.NL_HARD, "Lemma 5.6"
        else:
            hardness, lemma = Hardness.L_HARD, "Lemma 5.7"
        return Classification(
            query, Verdict.NOT_IN_FO, hardness, wg, guarded, False,
            cycle=cycle, two_cycle=two_cycle,
            reason=f"attack graph has a 2-cycle with {negated} negated "
                   f"atom(s): {hardness.value} by {lemma}",
        )

    # Not weakly guarded: Lemmas 5.5 and 5.6 still apply to two-cycles
    # containing at least one positive atom (Section 7).
    if two_cycle is not None:
        negated = _negated_count(query, two_cycle)
        if negated == 0:
            return Classification(
                query, Verdict.NOT_IN_FO, Hardness.L_HARD, wg, guarded, False,
                cycle=cycle, two_cycle=two_cycle,
                reason="2-cycle of positive atoms: L-hard by Lemma 5.5 "
                       "(no weak-guardedness needed)",
            )
        if negated == 1:
            return Classification(
                query, Verdict.NOT_IN_FO, Hardness.NL_HARD, wg, guarded, False,
                cycle=cycle, two_cycle=two_cycle,
                reason="2-cycle with one negated atom: NL-hard by Lemma 5.6 "
                       "(no weak-guardedness needed)",
            )
    return Classification(
        query, Verdict.UNDECIDED, Hardness.NONE, wg, guarded, False,
        cycle=cycle, two_cycle=two_cycle,
        reason="cyclic attack graph, negation not weakly guarded, and no "
               "applicable hardness lemma; cyclicity is not necessary for "
               "hardness beyond weak guardedness (Example 7.1)",
    )
