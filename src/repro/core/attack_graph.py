"""The attack graph of a query (Section 4.1).

Attacks between variables: for an atom F and variables u ∈ vars(F),
w ∈ vars(q), we write ``F|u ⇝ w`` when there is a sequence
``u_0, ..., u_l`` of variables with u_0 = u, u_l = w, consecutive
variables co-occurring in a positive atom, and no variable of the
sequence belonging to F^{+,q}.

Attacks between atoms: F attacks G (``F ⇝ G``) when F attacks some
variable of key(G).  The attack graph has vertex set q⁺ ∪ q⁻ and an edge
for every attack between distinct atoms.

Disequality constraints behave like negated fresh *all-key* atoms
(Lemma 6.6); all-key atoms have no outgoing attacks, so disequalities can
never contribute an edge, let alone a cycle, and are ignored here.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Tuple

from .atoms import Atom
from .fds import oplus
from .query import Query
from .terms import Variable


def cooccurrence_graph(query: Query) -> Dict[Variable, frozenset]:
    """Adjacency map: x ~ y iff x and y co-occur in some positive atom.

    Every variable is adjacent to itself (witnesses of length zero are
    allowed by the definition).
    """
    adj: Dict[Variable, set] = {v: set() for v in query.vars}
    for p in query.positives:
        vs = p.vars
        for x in vs:
            adj.setdefault(x, set()).update(vs)
    return {v: frozenset(neighbours) for v, neighbours in adj.items()}


def attacked_variables(query: Query, atom_obj: Atom) -> FrozenSet[Variable]:
    """All w with F ⇝ w, computed by BFS from vars(F) \\ F^{+,q}.

    A witness must avoid F^{+,q} entirely (including its first element),
    so the search starts only from the atom's own variables outside the
    closure and never enters it.
    """
    forbidden = oplus(query, atom_obj)
    start = [u for u in atom_obj.vars if u not in forbidden]
    adj = cooccurrence_graph(query)
    seen = set(start)
    frontier = deque(start)
    while frontier:
        u = frontier.popleft()
        for w in adj.get(u, ()):
            if w not in seen and w not in forbidden:
                seen.add(w)
                frontier.append(w)
    return frozenset(seen)


def attacked_from(
    query: Query, atom_obj: Atom, source: Variable
) -> FrozenSet[Variable]:
    """All w with F|source ⇝ w: reachability from one variable of F.

    The reduction gadgets of Lemmas 5.6/5.7 and Proposition 7.2 need the
    single-source attack relation, not just its union over vars(F).
    """
    if source not in atom_obj.vars:
        raise ValueError(f"{source} does not occur in {atom_obj!r}")
    forbidden = oplus(query, atom_obj)
    if source in forbidden:
        return frozenset()
    adj = cooccurrence_graph(query)
    seen = {source}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for w in adj.get(u, ()):
            if w not in seen and w not in forbidden:
                seen.add(w)
                frontier.append(w)
    return frozenset(seen)


def attack_witness(
    query: Query, atom_obj: Atom, target: Variable
) -> Optional[Tuple[Variable, ...]]:
    """A witness sequence for F ⇝ target, or None if F does not attack it.

    The returned sequence (u_0, ..., u_l) satisfies the three conditions
    of Section 4.1 and is produced by shortest-path BFS, so it is a
    minimum-length witness.
    """
    forbidden = oplus(query, atom_obj)
    if target in forbidden:
        return None
    adj = cooccurrence_graph(query)
    parents: Dict[Variable, Optional[Variable]] = {}
    frontier = deque()
    for u in sorted(atom_obj.vars):
        if u not in forbidden:
            parents[u] = None
            frontier.append(u)
    while frontier:
        u = frontier.popleft()
        if u == target:
            path = [u]
            while parents[path[-1]] is not None:
                path.append(parents[path[-1]])
            return tuple(reversed(path))
        for w in sorted(adj.get(u, ())):
            if w not in parents and w not in forbidden:
                parents[w] = u
                frontier.append(w)
    return None


def attacks_variable(query: Query, atom_obj: Atom, var: Variable) -> bool:
    """F ⇝ var?"""
    return var in attacked_variables(query, atom_obj)


def attacks_atom(query: Query, f: Atom, g: Atom) -> bool:
    """F ⇝ G: F attacks some variable of key(G) (and F ≠ G)."""
    if f == g:
        return False
    return bool(attacked_variables(query, f) & g.key_vars)


class AttackGraph:
    """The attack graph of a query, with cycle diagnostics.

    Vertices are the atoms of q⁺ ∪ q⁻; edges are atom attacks.  The
    variable-level attack sets are exposed via :meth:`attacked_vars` for
    reuse by the classifier and the reduction gadgets.
    """

    def __init__(self, query: Query):
        self.query = query
        self._attacked: Dict[Atom, FrozenSet[Variable]] = {
            a: attacked_variables(query, a) for a in query.atoms
        }
        self.edges: List[Tuple[Atom, Atom]] = []
        self._succ: Dict[Atom, List[Atom]] = {a: [] for a in query.atoms}
        for f in query.atoms:
            for g in query.atoms:
                if f != g and self._attacked[f] & g.key_vars:
                    self.edges.append((f, g))
                    self._succ[f].append(g)

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The vertex set (q⁺ first, then q⁻, in query order)."""
        return self.query.atoms

    def attacked_vars(self, atom_obj: Atom) -> FrozenSet[Variable]:
        """The set of variables attacked by *atom_obj*."""
        return self._attacked[atom_obj]

    def successors(self, atom_obj: Atom) -> Tuple[Atom, ...]:
        """Atoms attacked by *atom_obj*."""
        return tuple(self._succ[atom_obj])

    def predecessors(self, atom_obj: Atom) -> Tuple[Atom, ...]:
        """Atoms attacking *atom_obj*."""
        return tuple(f for f, g in self.edges if g == atom_obj)

    def has_edge(self, f: Atom, g: Atom) -> bool:
        """Is there an attack F ⇝ G?"""
        return (f, g) in set(self.edges)

    @property
    def is_acyclic(self) -> bool:
        """True when the attack graph contains no directed cycle."""
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[Tuple[Atom, ...]]:
        """A directed cycle (v_0, ..., v_k, v_0-implied), or None.

        The returned tuple lists the atoms on the cycle; the edge from
        the last atom back to the first closes it.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {a: WHITE for a in self.query.atoms}
        stack: List[Atom] = []

        def dfs(a: Atom) -> Optional[Tuple[Atom, ...]]:
            color[a] = GRAY
            stack.append(a)
            for b in self._succ[a]:
                if color[b] == GRAY:
                    i = stack.index(b)
                    return tuple(stack[i:])
                if color[b] == WHITE:
                    found = dfs(b)
                    if found is not None:
                        return found
            stack.pop()
            color[a] = BLACK
            return None

        for a in self.query.atoms:
            if color[a] == WHITE:
                found = dfs(a)
                if found is not None:
                    return found
        return None

    def find_two_cycle(self) -> Optional[Tuple[Atom, Atom]]:
        """A cycle of length two, or None.

        By Lemma 4.9, when negation is weakly guarded a cyclic attack
        graph always contains a cycle of length two; the classifier
        relies on this to pick the right hardness lemma.
        """
        edge_set = set(self.edges)
        for f, g in self.edges:
            if (g, f) in edge_set:
                return (f, g)
        return None

    def unattacked_atoms(self) -> Tuple[Atom, ...]:
        """Atoms with no incoming attack edge."""
        attacked = {g for _, g in self.edges}
        return tuple(a for a in self.query.atoms if a not in attacked)

    def unattacked_variables(self) -> FrozenSet[Variable]:
        """Variables attacked by no atom (exactly the reifiable ones
        under weakly-guarded negation, Cor. 6.9 + Prop. 7.2)."""
        attacked = set()
        for vs in self._attacked.values():
            attacked |= vs
        return frozenset(self.query.vars - attacked)

    def topological_order(self) -> Tuple[Atom, ...]:
        """A topological order of the atoms (raises when cyclic).

        Unattacked atoms come first; Algorithm 1 can eliminate atoms in
        this order.
        """
        if not self.is_acyclic:
            raise ValueError("the attack graph is cyclic")
        indegree = {a: 0 for a in self.query.atoms}
        for _, g in self.edges:
            indegree[g] += 1
        ready = [a for a in self.query.atoms if indegree[a] == 0]
        order: List[Atom] = []
        while ready:
            a = ready.pop(0)
            order.append(a)
            for b in self._succ[a]:
                indegree[b] -= 1
                if indegree[b] == 0:
                    ready.append(b)
        return tuple(order)

    def to_dot(self) -> str:
        """Graphviz DOT rendering: negated atoms drawn as boxes."""
        lines = ["digraph attack_graph {"]
        for a in self.query.atoms:
            shape = "box" if self.query.is_negative(a) else "ellipse"
            label = repr(a).replace('"', r"\"")
            lines.append(f'  "{a.relation}" [shape={shape}, label="{label}"];')
        for f, g in self.edges:
            lines.append(f'  "{f.relation}" -> "{g.relation}";')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        es = ", ".join(f"{f!r}->{g!r}" for f, g in self.edges)
        return f"AttackGraph(edges=[{es}])"
