"""One-stop structural analysis of a query.

Collects everything the paper's machinery computes about a query —
guardedness, the F⊕ closures, attacked-variable sets with witnesses,
the attack graph with its cycle or topological order, the Theorem 4.3
verdict, and (when in FO) rewriting statistics — into a single
renderable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .attack_graph import AttackGraph, attack_witness
from .classify import Classification, classify
from .fds import oplus
from .query import Query


@dataclass
class AtomAnalysis:
    """Per-atom structural facts."""

    relation: str
    negated: bool
    all_key: bool
    key_vars: Tuple[str, ...]
    oplus_vars: Tuple[str, ...]
    attacked_vars: Tuple[str, ...]
    witnesses: Dict[str, Tuple[str, ...]]


@dataclass
class QueryAnalysis:
    """The full report for one query."""

    query: Query
    safe: bool
    guarded: bool
    weakly_guarded: bool
    atoms: List[AtomAnalysis]
    edges: List[Tuple[str, str]]
    classification: Classification
    cycle: Optional[Tuple[str, ...]]
    topological_order: Optional[Tuple[str, ...]]
    rewriting_stats: Optional[dict] = None

    def render(self) -> str:
        lines = [f"query: {self.query}"]
        lines.append(
            f"safe: {self.safe}   guarded: {self.guarded}   "
            f"weakly guarded: {self.weakly_guarded}"
        )
        lines.append("atoms:")
        for a in self.atoms:
            polarity = "negated " if a.negated else "positive"
            key = ",".join(a.key_vars) or "(ground)"
            lines.append(
                f"  {a.relation:12s} {polarity}  key vars: {key:12s} "
                f"F+: {{{','.join(a.oplus_vars)}}}  "
                f"attacks: {{{','.join(a.attacked_vars)}}}"
            )
            for target, witness in sorted(a.witnesses.items()):
                lines.append(
                    f"      witness {a.relation}|{witness[0]} ~> {target}: "
                    f"({', '.join(witness)})"
                )
        edge_text = ", ".join(f"{f}->{g}" for f, g in self.edges) or "none"
        lines.append(f"attack edges: {edge_text}")
        if self.cycle is not None:
            lines.append(f"cycle: {' -> '.join(self.cycle)} -> {self.cycle[0]}")
        if self.topological_order is not None:
            lines.append(
                "elimination order: " + " , ".join(self.topological_order)
            )
        lines.append(f"verdict: {self.classification.verdict.value}")
        lines.append(f"reason: {self.classification.reason}")
        if self.rewriting_stats is not None:
            s = self.rewriting_stats
            extra = ""
            if "negations" in s:
                extra = (
                    f", {s['negations']} negation(s), "
                    f"widest OR {s['max_or_width']}"
                )
            lines.append(
                f"rewriting: {s['nodes']} nodes, {s['atoms']} atoms, "
                f"{s['quantifiers']} quantifiers, depth {s['depth']}"
                f"{extra}"
            )
        return "\n".join(lines)


def analyze(query: Query, include_rewriting: bool = True) -> QueryAnalysis:
    """Compute the full structural report for *query*."""
    graph = AttackGraph(query)
    atoms: List[AtomAnalysis] = []
    for a in query.atoms:
        attacked = graph.attacked_vars(a)
        witnesses: Dict[str, Tuple[str, ...]] = {}
        for v in sorted(attacked):
            w = attack_witness(query, a, v)
            if w is not None:
                witnesses[v.name] = tuple(u.name for u in w)
        atoms.append(AtomAnalysis(
            relation=a.relation,
            negated=query.is_negative(a),
            all_key=a.is_all_key,
            key_vars=tuple(sorted(v.name for v in a.key_vars)),
            oplus_vars=tuple(sorted(v.name for v in oplus(query, a))),
            attacked_vars=tuple(sorted(v.name for v in attacked)),
            witnesses=witnesses,
        ))

    classification = classify(query, graph)
    cycle = graph.find_cycle()
    analysis = QueryAnalysis(
        query=query,
        safe=query.is_safe,
        guarded=query.has_guarded_negation,
        weakly_guarded=query.has_weakly_guarded_negation,
        atoms=atoms,
        edges=sorted((f.relation, g.relation) for f, g in graph.edges),
        classification=classification,
        cycle=tuple(a.relation for a in cycle) if cycle else None,
        topological_order=(
            tuple(a.relation for a in graph.topological_order())
            if cycle is None else None
        ),
    )
    if include_rewriting and classification.in_fo:
        from ..cqa.rewriting import consistent_rewriting
        from ..fo.stats import stats

        s = stats(consistent_rewriting(query))
        analysis.rewriting_stats = {
            "nodes": s.nodes,
            "atoms": s.atoms,
            "quantifiers": s.quantifiers,
            "depth": s.quantifier_depth,
            "negations": s.negations,
            "max_or_width": s.max_or_width,
        }
    return analysis
