"""The paper's structural lemmas as executable checks.

Each function verifies one lemma's statement on a concrete query and
returns the list of violations (empty = the lemma holds, as it must).
These checks power property-based tests and double as machine-readable
documentation of Section 4.3 and Lemma 6.10.
"""

from __future__ import annotations

from typing import List

from .attack_graph import AttackGraph, attacked_variables
from .fds import oplus
from .query import Query
from .terms import Constant, Variable


def check_lemma_4_7(query: Query) -> List[str]:
    """Lemma 4.7: if F|w ⇝ u then for every positive P ≠ F containing u,
    F attacks some variable of key(P)."""
    violations = []
    for f in query.atoms:
        attacked = attacked_variables(query, f)
        for u in attacked:
            for p in query.positives:
                if p == f or u not in p.vars:
                    continue
                if not attacked & p.key_vars:
                    violations.append(
                        f"{f.relation} ~> {u.name} but attacks no key "
                        f"variable of {p.relation}"
                    )
    return violations


def check_lemma_4_8(query: Query) -> List[str]:
    """Lemma 4.8: if F ⇝ P (P positive) then F attacks every variable
    of vars(P) \\ F⊕."""
    violations = []
    graph = AttackGraph(query)
    for f in query.atoms:
        f_plus = oplus(query, f)
        attacked = graph.attacked_vars(f)
        for p in query.positives:
            if p == f or not graph.has_edge(f, p):
                continue
            for u in p.vars - f_plus:
                if u not in attacked:
                    violations.append(
                        f"{f.relation} ~> {p.relation} but not "
                        f"{f.relation} ~> {u.name}"
                    )
    return violations


def check_lemma_4_9(query: Query) -> List[str]:
    """Lemma 4.9 (weakly-guarded queries): F ⇝ G ⇝ H implies F ⇝ H or
    G ⇝ F.  Returns [] vacuously when negation is not weakly guarded."""
    if not query.has_weakly_guarded_negation:
        return []
    violations = []
    graph = AttackGraph(query)
    edges = set(graph.edges)
    for f, g in edges:
        for g2, h in edges:
            if g2 != g or f == h:
                continue
            if (f, h) not in edges and (g, f) not in edges:
                violations.append(
                    f"{f.relation} ~> {g.relation} ~> {h.relation} with "
                    f"neither {f.relation} ~> {h.relation} nor "
                    f"{g.relation} ~> {f.relation}"
                )
    return violations


def check_all_key_zero_outdegree(query: Query) -> List[str]:
    """All-key atoms never attack (vars(F) = key(F) ⊆ F⊕)."""
    graph = AttackGraph(query)
    return [
        f"all-key atom {a.relation} attacks {g.relation}"
        for a in query.atoms if a.is_all_key
        for g in graph.successors(a)
    ]


def check_lemma_6_10(query: Query, variable: Variable,
                     constant: Constant) -> List[str]:
    """Lemma 6.10: substituting a constant never adds attacks and
    preserves weak-guardedness."""
    violations = []
    sub = query.substitute({variable: constant})
    before = {(f.relation, g.relation) for f, g in AttackGraph(query).edges}
    after = {(f.relation, g.relation) for f, g in AttackGraph(sub).edges}
    for edge in after - before:
        violations.append(f"substitution created attack {edge}")
    if query.has_weakly_guarded_negation and not sub.has_weakly_guarded_negation:
        violations.append("substitution broke weak-guardedness")
    return violations


def check_lemma_6_8(query: Query, repair, fresh_value="fresh-6-8") -> List[str]:
    """Lemma 6.8, randomized: swapping a key-relevant fact A of a
    consistent database for a key-equal fact B can only *lose*
    satisfying valuations over the unattacked variables X.

    *repair* must be a consistent database.  For every atom G with no
    attacks into X (the unattacked variables), every key-relevant
    G-fact A, and a synthetic key-equal B, checks: r_B ⊨ ζ(q) implies
    r ⊨ ζ(q) for all valuations ζ over X realized in either database.
    """
    from ..db.satisfaction import key_relevant_facts, satisfying_valuations

    if not query.has_weakly_guarded_negation:
        return []
    if not repair.is_consistent:
        raise ValueError("Lemma 6.8 needs a consistent database")

    graph = AttackGraph(query)
    unattacked = graph.unattacked_variables()
    if not unattacked:
        return []
    x_vars = tuple(sorted(unattacked))
    violations: List[str] = []

    def projections(db) -> set:
        return {
            tuple(env[v] for v in x_vars)
            for env in satisfying_valuations(query, db)
        }

    for g in query.atoms:
        if graph.attacked_vars(g) & unattacked:
            continue  # hypothesis requires G not attacking X
        k = g.schema.key_size
        arity = g.schema.arity
        if k == arity:
            continue  # all-key: A = B, trivial
        for a_fact in key_relevant_facts(query, g, repair):
            b_fact = a_fact[:k] + tuple(
                (fresh_value, i) for i in range(arity - k)
            )
            if b_fact == a_fact:
                continue
            swapped = repair.copy()
            swapped.discard(g.relation, a_fact)
            swapped.add(g.relation, b_fact)
            extra = projections(swapped) - projections(repair)
            if extra:
                violations.append(
                    f"swapping {g.relation}{a_fact!r} -> {b_fact!r} "
                    f"gained X-valuations {sorted(extra, key=repr)[:3]}"
                )
    return violations


def check_corollary_6_9(query: Query, db) -> List[str]:
    """Corollary 6.9, by brute force: when q is certain, some constant
    tuple for the unattacked variables keeps it certain.

    Exponential (enumerates repairs per grounding); intended for small
    databases in tests.
    """
    from ..cqa.brute_force import is_certain_brute_force

    if not query.has_weakly_guarded_negation:
        return []
    graph = AttackGraph(query)
    x_vars = tuple(sorted(graph.unattacked_variables()))
    if not x_vars:
        return []
    if not is_certain_brute_force(query, db):
        return []
    import itertools

    adom = sorted(db.active_domain(), key=repr)
    for combo in itertools.product(adom, repeat=len(x_vars)):
        grounded = query.substitute(
            {v: Constant(c) for v, c in zip(x_vars, combo)}
        )
        if is_certain_brute_force(grounded, db):
            return []
    return [
        f"q certain but no grounding of unattacked {[v.name for v in x_vars]} "
        f"is certain (reifiability violated)"
    ]


def check_all(query: Query) -> List[str]:
    """Run every parameter-free lemma check."""
    return (
        check_lemma_4_7(query)
        + check_lemma_4_8(query)
        + check_lemma_4_9(query)
        + check_all_key_zero_outdegree(query)
    )
