"""Source spans and position arithmetic for diagnostics.

A :class:`Span` is a half-open ``[start, end)`` interval of character
offsets into a query text.  :class:`SourceText` turns offsets into
1-based ``line:column`` positions and renders caret-underlined excerpts,
so parser errors and lint diagnostics can point at the offending text::

    P(x | y), not N(z | y)
                    ^
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Span:
    """A half-open interval ``[start, end)`` of character offsets."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def union(self, other: "Span") -> "Span":
        """The smallest span covering both operands."""
        return Span(min(self.start, other.start), max(self.end, other.end))

    def to_dict(self) -> Dict[str, int]:
        return {"start": self.start, "end": self.end}

    def __repr__(self) -> str:
        return f"Span({self.start}, {self.end})"


class SourceText:
    """A piece of source text with line/column arithmetic.

    Lines and columns are 1-based, matching the convention of every
    mainstream compiler diagnostic.
    """

    def __init__(self, text: str):
        self.text = text
        starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    def position(self, offset: int) -> Tuple[int, int]:
        """``(line, column)`` of a character offset, both 1-based."""
        offset = max(0, min(offset, len(self.text)))
        line = bisect_right(self._line_starts, offset)
        column = offset - self._line_starts[line - 1] + 1
        return line, column

    def describe(self, span: Span) -> str:
        """Human-readable position of a span: ``"line 1, column 11"``."""
        line, column = self.position(span.start)
        return f"line {line}, column {column}"

    def line_of(self, offset: int) -> str:
        """The full source line containing *offset* (without newline)."""
        line, _ = self.position(offset)
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        return self.text[start:] if end < 0 else self.text[start:end]

    def snippet(self, span: Span, context: int = 10) -> str:
        """The spanned text itself, clipped for one-line messages."""
        text = self.text[span.start:span.end]
        if len(text) > 2 * context + 3:
            text = text[:context] + "..." + text[-context:]
        return text

    def excerpt(self, span: Span) -> str:
        """The source line plus a caret underline below the span::

            P(x | y), not N(z | y)
                          ^^^^^^^^
        """
        line, column = self.position(span.start)
        source_line = self.line_of(span.start)
        line_end = self._line_starts[line - 1] + len(source_line)
        width = max(1, min(span.end, line_end) - span.start)
        underline = " " * (column - 1) + "^" * width
        return f"{source_line}\n{underline}"

    def excerpt_lines(self, span: Span, indent: str = "  ") -> List[str]:
        """:meth:`excerpt` as indented lines, for diagnostic rendering."""
        return [indent + part for part in self.excerpt(span).split("\n")]
