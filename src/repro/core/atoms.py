"""Relation schemas, atoms, and facts.

Every relation name has a *signature* ``[n, k]``: arity ``n`` and primary
key ``{1, ..., k}`` (the first ``k`` positions).  A relation is
*simple-key* when ``k == 1`` and *all-key* when ``k == n`` (Section 3 of
the paper).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple

from .terms import Constant, Term, Variable, is_variable, variables_of


class RelationSchema:
    """A relation name with signature ``[arity, key_size]``."""

    __slots__ = ("name", "arity", "key_size")

    def __init__(self, name: str, arity: int, key_size: int):
        if not isinstance(name, str) or not name:
            raise TypeError("relation name must be a non-empty string")
        if not 1 <= key_size <= arity:
            raise ValueError(
                f"signature requires 1 <= key_size <= arity, got [{arity}, {key_size}]"
            )
        self.name = name
        self.arity = arity
        self.key_size = key_size

    @property
    def is_all_key(self) -> bool:
        """True when every position is a primary-key position."""
        return self.key_size == self.arity

    @property
    def is_simple_key(self) -> bool:
        """True when the primary key is the single first position."""
        return self.key_size == 1

    def key_of(self, row: Sequence) -> Tuple:
        """Project a stored row onto its primary-key positions."""
        return tuple(row[: self.key_size])

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {self.arity}, {self.key_size})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.arity == other.arity
            and self.key_size == other.key_size
        )

    def __hash__(self) -> int:
        return hash((self.name, self.arity, self.key_size))


class Atom:
    """An atom ``R(s_1, ..., s_n)`` over a relation schema.

    The first ``key_size`` terms form the primary-key value (written
    underlined in the paper).  An atom whose terms are all constants is a
    *fact*.
    """

    __slots__ = ("schema", "terms")

    def __init__(self, schema: RelationSchema, terms: Sequence[Term]):
        terms = tuple(terms)
        if len(terms) != schema.arity:
            raise ValueError(
                f"{schema.name} has arity {schema.arity}, got {len(terms)} terms"
            )
        for t in terms:
            if not isinstance(t, (Variable, Constant)):
                raise TypeError(f"atom terms must be Variable or Constant, got {t!r}")
        self.schema = schema
        self.terms = terms

    @property
    def relation(self) -> str:
        """The relation name."""
        return self.schema.name

    @property
    def key_terms(self) -> Tuple[Term, ...]:
        """The terms in primary-key positions."""
        return self.terms[: self.schema.key_size]

    @property
    def value_terms(self) -> Tuple[Term, ...]:
        """The terms in non-primary-key positions."""
        return self.terms[self.schema.key_size:]

    @property
    def key_vars(self) -> frozenset:
        """key(F): the set of variables occurring in the primary key."""
        return variables_of(self.key_terms)

    @property
    def vars(self) -> frozenset:
        """vars(F): the set of variables occurring anywhere in the atom."""
        return variables_of(self.terms)

    @property
    def is_fact(self) -> bool:
        """True when the atom contains no variables."""
        return not any(is_variable(t) for t in self.terms)

    @property
    def is_all_key(self) -> bool:
        """True when the relation is all-key."""
        return self.schema.is_all_key

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution (variables not in *mapping* are unchanged)."""
        return Atom(
            self.schema,
            tuple(mapping.get(t, t) if is_variable(t) else t for t in self.terms),
        )

    def as_row(self) -> Tuple:
        """Convert a fact to a raw value tuple for database storage."""
        if not self.is_fact:
            raise ValueError(f"atom {self} contains variables; not a fact")
        return tuple(t.value for t in self.terms)

    def key_equal(self, other: "Atom") -> bool:
        """Paper's ~ relation: same relation name and equal key values."""
        return (
            self.relation == other.relation and self.key_terms == other.key_terms
        )

    def __repr__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"

    def __str__(self) -> str:
        key = ",".join(str(t) for t in self.key_terms)
        rest = ",".join(str(t) for t in self.value_terms)
        return f"{self.relation}({key}|{rest})" if rest else f"{self.relation}({key})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.schema == other.schema
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.terms))


def atom(name: str, key: Iterable[Term], values: Iterable[Term] = ()) -> Atom:
    """Build an atom from key terms and value terms.

    ``atom("R", [x], [y])`` is the paper's ``R(x, y)`` with ``x``
    underlined.
    """
    key = tuple(key)
    values = tuple(values)
    schema = RelationSchema(name, len(key) + len(values), len(key))
    return Atom(schema, key + values)
