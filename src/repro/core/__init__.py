"""Core query model: terms, atoms, queries, FDs, attack graphs, classifier."""

from .analysis import AtomAnalysis, QueryAnalysis, analyze
from .atoms import Atom, RelationSchema, atom
from .attack_graph import (
    AttackGraph,
    attack_witness,
    attacked_from,
    attacked_variables,
    attacks_atom,
    attacks_variable,
)
from .classify import Classification, Hardness, Verdict, classify
from .fds import FD, closure, fds_of_atoms, implies, oplus
from .parser import ParseError, parse_atom, parse_query, query_to_text
from .query import Diseq, Query, QueryError
from .terms import (
    Constant,
    PlaceholderConstant,
    Term,
    Variable,
    fresh_constant,
    make_variables,
)

__all__ = [
    "Atom",
    "AtomAnalysis",
    "AttackGraph",
    "Classification",
    "Constant",
    "Diseq",
    "FD",
    "Hardness",
    "PlaceholderConstant",
    "Query",
    "ParseError",
    "QueryAnalysis",
    "QueryError",
    "RelationSchema",
    "Term",
    "Variable",
    "Verdict",
    "analyze",
    "atom",
    "attack_witness",
    "attacked_from",
    "attacked_variables",
    "attacks_atom",
    "attacks_variable",
    "classify",
    "closure",
    "fds_of_atoms",
    "fresh_constant",
    "implies",
    "make_variables",
    "oplus",
    "parse_atom",
    "parse_query",
    "query_to_text",
]
