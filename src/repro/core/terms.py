"""Terms of the query language: variables and constants.

The paper assumes disjoint sets of *variables* and *constants*
(Section 3).  Constants wrap an arbitrary hashable Python value, which
lets reductions use structured values such as the pairs ``<a, b>`` from
the :math:`\\Theta^a_b` valuations of Lemmas 5.6/5.7 without any special
casing.

Two special kinds of constants support the machinery of Section 6:

* :class:`PlaceholderConstant` — a fresh constant standing in for a
  reified variable (proof of Lemma 6.1 replaces unattacked key variables
  by fresh constants :math:`c_i` and later re-opens them as quantified
  variables).
* :func:`fresh_constant` — a typed fresh constant guaranteed not to
  collide with user data, used by the executable reductions.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Union


class Variable:
    """A query variable, identified by its name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("variable name must be a non-empty string")
        self.name = name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name


class Constant:
    """A constant, wrapping an arbitrary hashable value."""

    __slots__ = ("value",)

    def __init__(self, value: Hashable):
        hash(value)  # fail fast on unhashable values
        self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and not isinstance(other, PlaceholderConstant)
            and not isinstance(self, PlaceholderConstant)
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("Constant", self.value))


class PlaceholderConstant(Constant):
    """A fresh constant standing in for a reified variable.

    The rewriting algorithm (proof of Lemma 6.1) substitutes the
    unattacked key variables of an atom by fresh constants, builds the
    rewriting of the grounded query, and finally replaces the fresh
    constants back by (quantified) variables.  A placeholder remembers
    the variable it will be re-opened as.  Placeholders are compared by
    identity of their serial number, never by value, so two reification
    rounds can safely reuse variable names.
    """

    __slots__ = ("variable", "serial")

    _counter = itertools.count()

    def __init__(self, variable: Variable):
        serial = next(PlaceholderConstant._counter)
        super().__init__(("__placeholder__", variable.name, serial))
        self.variable = variable
        self.serial = serial

    def __repr__(self) -> str:
        return f"PlaceholderConstant({self.variable.name!r}#{self.serial})"

    def __str__(self) -> str:
        return f"&{self.variable.name}#{self.serial}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PlaceholderConstant) and self.serial == other.serial

    def __hash__(self) -> int:
        return hash(("PlaceholderConstant", self.serial))


Term = Union[Variable, Constant]

_fresh_counter = itertools.count()


def fresh_constant(label: str = "c") -> Constant:
    """Return a constant guaranteed distinct from all previously created ones."""
    return Constant(("__fresh__", label, next(_fresh_counter)))


def is_variable(term: Term) -> bool:
    """Return True if *term* is a variable."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True if *term* is a constant (including placeholders)."""
    return isinstance(term, Constant)


def variables_of(terms) -> frozenset:
    """The set of variables occurring in a sequence of terms (paper: vars(x))."""
    return frozenset(t for t in terms if isinstance(t, Variable))


def make_variables(names: str):
    """Convenience: ``make_variables("x y z")`` -> three Variable objects."""
    return tuple(Variable(n) for n in names.split())
