"""Functional dependencies over query variables.

Section 4.1 of the paper associates with every set ``p`` of non-negated
atoms the set of functional dependencies

    K(p) = { key(F) -> vars(F) | F in p }

and defines, for an atom F of a query q,

    F^{+,q} = { x in vars(q) | K(q+ \\ {F}) |= key(F) -> x },

the closure of key(F) with respect to the dependencies of the positive
atoms other than F.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from .atoms import Atom
from .query import Query
from .terms import Variable


class FD:
    """A functional dependency between sets of variables."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Iterable[Variable], rhs: Iterable[Variable]):
        self.lhs = frozenset(lhs)
        self.rhs = frozenset(rhs)

    def __repr__(self) -> str:
        lhs = ",".join(sorted(v.name for v in self.lhs)) or "()"
        rhs = ",".join(sorted(v.name for v in self.rhs)) or "()"
        return f"{lhs} -> {rhs}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FD) and self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))


def fds_of_atoms(atoms: Sequence[Atom]) -> Tuple[FD, ...]:
    """K(p): one dependency key(F) -> vars(F) per atom."""
    return tuple(FD(a.key_vars, a.vars) for a in atoms)


def closure(attrs: Iterable[Variable], fds: Sequence[FD]) -> FrozenSet[Variable]:
    """The closure of *attrs* under *fds* (standard fixpoint algorithm)."""
    closed = set(attrs)
    pending: List[FD] = list(fds)
    changed = True
    while changed:
        changed = False
        remaining = []
        for fd in pending:
            if fd.lhs <= closed:
                if not fd.rhs <= closed:
                    closed |= fd.rhs
                    changed = True
            else:
                remaining.append(fd)
        pending = remaining
    return frozenset(closed)


def implies(fds: Sequence[FD], fd: FD) -> bool:
    """Does the set of dependencies logically imply *fd*?"""
    return fd.rhs <= closure(fd.lhs, fds)


def oplus(query: Query, atom_obj: Atom) -> FrozenSet[Variable]:
    """F^{+,q}: closure of key(F) under K(q+ \\ {F}).

    For F in q-, the set ``q+ \\ {F}`` is simply ``q+`` because F is not a
    positive atom; the definition handles both cases uniformly.
    """
    others = tuple(a for a in query.positives if a != atom_obj)
    return closure(atom_obj.key_vars, fds_of_atoms(others))
