"""SQL pushdown: certain answers as one query over a persistent mirror.

The paper's practicality claim — a consistent first-order rewriting is
a single SQL query over the *inconsistent* database — already runs via
``method="sql"`` (:mod:`repro.db.sqlite_backend`), but that path loads
the whole fact store into a fresh in-memory sqlite connection per call,
which is exactly the copy a disk-resident store exists to avoid.  This
module keeps a **sqlite mirror** (``mirror.sqlite`` inside the store
directory) consistent with a :class:`~repro.storage.store.
PersistentDatabase` by subscribing to the same changelog the WAL rides:
each committed batch is applied as row deltas inside one sqlite
transaction together with the observed clock, so the mirror is always
at a well-defined changelog version.  On attach, a clock mismatch
(stale mirror, crash between WAL fsync and mirror commit, first use)
triggers one full rebuild — after which queries push down with zero
per-call loading.

Routing: :func:`prefer_sql` is the cost gate ``method="auto"`` consults
*before* :func:`repro.columnar.prefer_columnar`.  SQL wins only when
the database is mirror-backed (plain in-memory databases are never
rerouted), holds at least ``REPRO_SQL_MIN_FACTS`` facts, and the
compiled plan is free of Adom* operators — sqlite's active-domain CTE
re-derives the domain per query, so Adom-heavy rewritings stay on the
in-memory executors (the QP110 analysis rule reports this statically).
"""

from __future__ import annotations

import os
import pathlib
import sqlite3
from typing import Optional

from ..db.changelog import Changelog
from ..db.database import Database
from ..db.sqlite_backend import create_tables
from ..fo.sql import encode_value, table_name
from .stats import STATS

__all__ = ["SQLiteMirror", "sql_mirror", "mirror_connection", "mirror_capable",
           "prefer_sql", "sql_min_facts", "DEFAULT_SQL_MIN_FACTS"]

MIRROR_FILE = "mirror.sqlite"
_MIRROR_ATTR = "_sql_mirror"
_META_TABLE = "repro_meta"

#: Below this many facts the per-query overhead of sqlite (statement
#: compilation, the adom CTE) beats the in-memory executors.
DEFAULT_SQL_MIN_FACTS = 4096


def sql_min_facts() -> int:
    """The ``REPRO_SQL_MIN_FACTS`` routing threshold."""
    raw = os.environ.get("REPRO_SQL_MIN_FACTS", "").strip()
    return int(raw) if raw.isdigit() else DEFAULT_SQL_MIN_FACTS


class SQLiteMirror:
    """A sqlite file kept delta-consistent with one database.

    The mirror stores every relation in the sqlite backend's encoding
    (TEXT columns, :func:`repro.fo.sql.encode_value`) plus one metadata
    table carrying the changelog clock its contents reflect.  Delta
    application and the clock update share a transaction, so the file
    is never at an in-between version: a crash rolls back to the
    previous clock and the next attach rebuilds.
    """

    def __init__(self, db: Database, path: pathlib.Path):
        self.db = db
        self.path = path
        self.conn = sqlite3.connect(str(path))
        self._known = set()
        self._ensure_meta()
        if self._meta_clock() != db.clock:
            self.rebuild()
        else:
            self._known = set(db.schemas)
        db.subscribe(self._apply)

    # -- metadata ------------------------------------------------------

    def _ensure_meta(self) -> None:
        self.conn.execute(
            f"CREATE TABLE IF NOT EXISTS {_META_TABLE} "
            "(key TEXT PRIMARY KEY, value TEXT)")
        self.conn.commit()

    def _meta_clock(self) -> Optional[int]:
        row = self.conn.execute(
            f"SELECT value FROM {_META_TABLE} WHERE key = 'clock'"
        ).fetchone()
        return int(row[0]) if row is not None else None

    def _set_clock(self, clock: int) -> None:
        self.conn.execute(
            f"INSERT OR REPLACE INTO {_META_TABLE} VALUES ('clock', ?)",
            (str(clock),))

    @property
    def clock(self) -> Optional[int]:
        return self._meta_clock()

    # -- synchronization -----------------------------------------------

    def rebuild(self) -> None:
        """Drop and reload every relation at the database's clock."""
        cur = self.conn.cursor()
        tables = [
            row[0] for row in cur.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'")
            if row[0] != _META_TABLE
        ]
        for table in tables:
            cur.execute(f'DROP TABLE IF EXISTS "{table}"')
        create_tables(self.conn, self.db.schemas.values())
        for name in self.db.relations():
            schema = self.db.schemas[name]
            placeholders = ", ".join("?" for _ in range(schema.arity))
            cur.executemany(
                f"INSERT OR IGNORE INTO {table_name(name)} "
                f"VALUES ({placeholders})",
                [tuple(encode_value(v) for v in row)
                 for row in self.db.facts(name)],
            )
        self._set_clock(self.db.clock)
        self.conn.commit()
        self._known = set(self.db.schemas)
        STATS["pushdown"]["mirror_rebuilds"] += 1

    def _ensure_table(self, name: str) -> None:
        if name not in self._known:
            create_tables(self.conn, [self.db.schemas[name]])
            self._known.add(name)

    def _apply(self, log: Changelog) -> None:
        """Changelog listener: one batch, one sqlite transaction."""
        cur = self.conn.cursor()
        rows = 0
        for name, delta in log.deltas.items():
            self._ensure_table(name)
            arity = self.db.schemas[name].arity
            table = table_name(name)
            if delta.deleted:
                where = " AND ".join(f"c{i} = ?" for i in range(arity))
                cur.executemany(
                    f"DELETE FROM {table} WHERE {where}",
                    [tuple(encode_value(v) for v in row)
                     for row in delta.deleted],
                )
                rows += len(delta.deleted)
            if delta.inserted:
                placeholders = ", ".join("?" for _ in range(arity))
                cur.executemany(
                    f"INSERT OR IGNORE INTO {table} VALUES ({placeholders})",
                    [tuple(encode_value(v) for v in row)
                     for row in delta.inserted],
                )
                rows += len(delta.inserted)
        self._set_clock(log.version)
        self.conn.commit()
        STATS["pushdown"]["mirror_delta_rows"] += rows

    def close(self) -> None:
        try:
            self.db.unsubscribe(self._apply)
        except Exception:  # pragma: no cover - already unsubscribed
            pass
        self.conn.close()


def mirror_capable(db: Database) -> bool:
    """Only an *open* persistent store carries a mirror."""
    return bool(getattr(db, "is_open", False)) and hasattr(db, "storage_status")


def sql_mirror(db: Database) -> Optional[SQLiteMirror]:
    """The database's mirror, attached lazily; ``None`` off-store."""
    if not mirror_capable(db):
        return None
    mirror = getattr(db, _MIRROR_ATTR, None)
    if mirror is None:
        mirror = SQLiteMirror(db, pathlib.Path(db.path) / MIRROR_FILE)
        setattr(db, _MIRROR_ATTR, mirror)
    return mirror


def mirror_connection(db: Database) -> Optional[sqlite3.Connection]:
    """The connection ``method="sql"`` should run on, with routing
    accounting: the mirror when the database is store-backed (no
    per-query load), else ``None`` (the legacy load-into-memory path).
    """
    mirror = sql_mirror(db)
    if mirror is None:
        STATS["pushdown"]["legacy_sql"] += 1
        return None
    STATS["pushdown"]["routed_sql"] += 1
    return mirror.conn


def prefer_sql(compiled, db: Database) -> bool:
    """Should ``method="auto"`` push this run down to the mirror?

    Checked before :func:`repro.columnar.prefer_columnar`.  Three
    gates: the database must be mirror-backed (plain in-memory
    databases keep their current routing untouched), the compiled plan
    must be Adom*-free (the SQL form re-derives the active domain per
    query; QP110 reports the forced fallback), and the store must hold
    at least :func:`sql_min_facts` facts.
    """
    if not mirror_capable(db):
        return False
    from ..analysis.verifier import plan_uses_adom

    if plan_uses_adom(compiled.plan):
        STATS["pushdown"]["fallback_adom"] += 1
        return False
    if db.size() < sql_min_facts():
        STATS["pushdown"]["fallback_small"] += 1
        return False
    return True
