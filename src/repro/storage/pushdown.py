"""SQL pushdown: certain answers as one query over a persistent mirror.

The paper's practicality claim — a consistent first-order rewriting is
a single SQL query over the *inconsistent* database — runs natively
here: a store keeps ``mirror.sqlite`` delta-consistent by subscribing
to the same changelog the WAL rides, and :mod:`repro.storage.sqlgen`
compiles the verified plan IR straight to one parameterized SELECT
that sqlite executes end-to-end.  No per-call loading, no per-row
Python decode: answer rows come back as dictionary codes and land in
``array('q')`` columns (:meth:`ColumnarRelation.from_code_rows`).

Mirror layout (format ``2``):

* one INTEGER table per relation, columns ``c0..c{n-1}`` holding
  :class:`~repro.columnar.dictionary.ValueDictionary` codes, with a
  full-tuple ``WITHOUT ROWID`` primary key (key columns first, so the
  clustered index covers key-prefix lookups) plus a non-key suffix
  index;
* ``repro_dict`` — the persisted dictionary, verified (and replayed
  into the in-process dictionary) on attach so codes stay stable
  across process restarts;
* ``repro_adom`` — the refcounted active domain, maintained from the
  same deltas, which is what lets ``Adom*`` plans push down instead of
  re-deriving the domain per query;
* ``repro_meta`` — changelog clock + format marker.

Delta application, dictionary growth, adom refcounts and the clock
update share one sqlite transaction, so the file is never at an
in-between version: a crash rolls back to the previous clock and the
next attach rebuilds.

Routing: :func:`prefer_sql` is the cost gate ``method="auto"`` consults
*before* :func:`repro.columnar.prefer_columnar`.  SQL wins when the
database is mirror-backed (plain in-memory databases are never
rerouted), the plan has a native translation (QP110 reports the rare
unsupported shapes), and the store holds at least
``REPRO_SQL_MIN_FACTS`` facts.
"""

from __future__ import annotations

import base64
import pathlib
import pickle
import sqlite3
import threading
from collections import Counter, OrderedDict
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..columnar.dictionary import columnar_store
from ..columnar.relation import ColumnarRelation
from ..db.changelog import Changelog
from ..db.database import Database
from ..fo.sql import decode_value, encode_value, table_name
from ..obs.config import (
    DEFAULT_SQL_MIN_FACTS,
    DEFAULT_SQL_STMT_CACHE,
    RunConfig,
)
from .sqlgen import ADOM_TABLE, compile_plan, plan_relations, supports_plan
from .stats import STATS

__all__ = ["SQLiteMirror", "sql_mirror", "mirror_capable", "prefer_sql",
           "native_sql_answers", "native_sql_holds", "count_legacy_sql",
           "sql_min_facts", "sql_stmt_cache_size", "DEFAULT_SQL_MIN_FACTS",
           "DEFAULT_SQL_STMT_CACHE", "MIRROR_FORMAT"]

MIRROR_FILE = "mirror.sqlite"
_MIRROR_ATTR = "_sql_mirror"
_META_TABLE = "repro_meta"
_DICT_TABLE = "repro_dict"
_INTERNAL_TABLES = frozenset((_META_TABLE, _DICT_TABLE, ADOM_TABLE))

#: Bumped whenever the on-disk layout changes; a mismatch (including
#: any pre-integer TEXT mirror) forces one full rebuild.
MIRROR_FORMAT = "2"


def sql_min_facts() -> int:
    """The ``REPRO_SQL_MIN_FACTS`` routing threshold."""
    return RunConfig.from_env().resolved_sql_min_facts()


def sql_stmt_cache_size() -> int:
    """The ``REPRO_SQL_STMT_CACHE`` statement-cache capacity."""
    return RunConfig.from_env().resolved_sql_stmt_cache()


def _dict_text(value: object) -> str:
    """Serialize one dictionary value for ``repro_dict``.

    :func:`repro.fo.sql.encode_value` covers the workload types; query
    constants of other types fall back to pickle under a ``p:`` sigil
    (``encode_value`` never emits it).
    """
    try:
        return encode_value(value)
    except TypeError:
        return "p:" + base64.b64encode(pickle.dumps(value)).decode("ascii")


def _dict_value(text: str) -> object:
    if text.startswith("p:"):
        return pickle.loads(base64.b64decode(text[2:]))
    return decode_value(text)


class SQLiteMirror:
    """A sqlite file kept delta-consistent with one database.

    Attach verifies three things before trusting the file: the format
    marker, the changelog clock, and that the persisted dictionary
    replays into the in-process :class:`ValueDictionary` with identical
    codes (a fresh process replays it verbatim; a process whose
    dictionary diverged — e.g. columnar ran first with a different
    first-seen order — fails the check).  Any mismatch triggers one
    full rebuild, after which queries push down with zero per-call
    loading.
    """

    def __init__(self, db: Database, path: pathlib.Path):
        self.db = db
        self.path = path
        # Shared across a server's worker threads: Python's sqlite3 is
        # built serialized (threadsafety 3), and the mirror additionally
        # guards every statement + fetch + stmt-cache touch with one
        # re-entrant lock so a delta transaction is never interleaved
        # with a query on the same connection.
        self.conn = sqlite3.connect(str(path), check_same_thread=False)
        self._lock = threading.RLock()
        self.dictionary = columnar_store(db).dictionary
        self._known: set = set()
        self._dict_rows = 0
        self._stmt_cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._stmt_capacity = sql_stmt_cache_size()
        self._ensure_meta()
        if (self._meta("format") != MIRROR_FORMAT
                or self._meta_clock() != db.clock
                or not self._load_dictionary()):
            self.rebuild()
        else:
            self._known = set(db.schemas)
        db.subscribe(self._apply)

    # -- metadata ------------------------------------------------------

    def _ensure_meta(self) -> None:
        cur = self.conn.cursor()
        cur.execute(
            f"CREATE TABLE IF NOT EXISTS {_META_TABLE} "
            "(key TEXT PRIMARY KEY, value TEXT)")
        cur.execute(
            f"CREATE TABLE IF NOT EXISTS {_DICT_TABLE} "
            "(code INTEGER PRIMARY KEY, value TEXT NOT NULL)")
        cur.execute(
            f"CREATE TABLE IF NOT EXISTS {ADOM_TABLE} "
            "(code INTEGER PRIMARY KEY, refs INTEGER NOT NULL)")
        self.conn.commit()

    def _meta(self, key: str) -> Optional[str]:
        row = self.conn.execute(
            f"SELECT value FROM {_META_TABLE} WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else None

    def _set_meta(self, key: str, value: str) -> None:
        self.conn.execute(
            f"INSERT OR REPLACE INTO {_META_TABLE} VALUES (?, ?)",
            (key, value))

    def _meta_clock(self) -> Optional[int]:
        raw = self._meta("clock")
        return int(raw) if raw is not None else None

    @property
    def clock(self) -> Optional[int]:
        return self._meta_clock()

    # -- dictionary persistence ----------------------------------------

    def _load_dictionary(self) -> bool:
        """Replay ``repro_dict`` into the in-process dictionary.

        True iff every persisted ``(code, value)`` pair lands on the
        same code — the condition under which the mirror's integer
        columns are meaningful to this process.
        """
        rows = self.conn.execute(
            f"SELECT code, value FROM {_DICT_TABLE} ORDER BY code"
        ).fetchall()
        encode = self.dictionary.encode
        for code, text in rows:
            try:
                value = _dict_value(text)
            except Exception:
                return False
            if encode(value) != code:
                return False
        self._dict_rows = len(rows)
        return True

    def _persist_dict(self, cur: sqlite3.Cursor) -> None:
        """Append dictionary codes assigned since the last commit."""
        values = self.dictionary.values
        if self._dict_rows < len(values):
            cur.executemany(
                f"INSERT OR REPLACE INTO {_DICT_TABLE} VALUES (?, ?)",
                [(code, _dict_text(values[code]))
                 for code in range(self._dict_rows, len(values))])
            self._dict_rows = len(values)

    # -- schema --------------------------------------------------------

    def _create_table(self, cur: sqlite3.Cursor, name: str) -> None:
        schema = self.db.schemas[name]
        cols = ", ".join(f"c{i} INTEGER NOT NULL"
                         for i in range(schema.arity))
        pk = ", ".join(f"c{i}" for i in range(schema.arity))
        cur.execute(
            f"CREATE TABLE IF NOT EXISTS {table_name(name)} "
            f"({cols}, PRIMARY KEY ({pk})) WITHOUT ROWID")
        if schema.key_size < schema.arity:
            suffix = ", ".join(f"c{i}" for i in range(schema.key_size,
                                                      schema.arity))
            cur.execute(
                f"CREATE INDEX IF NOT EXISTS {table_name(name + '__suffix')} "
                f"ON {table_name(name)} ({suffix})")
        self._known.add(name)

    def _ensure_table(self, cur: sqlite3.Cursor, name: str) -> None:
        if name not in self._known:
            self._create_table(cur, name)

    def ensure_tables(self, names: Iterable[str]) -> None:
        """Create mirror tables for schema-only relations.

        ``add_relation`` emits no changelog, so a relation declared
        after attach has no table until its first delta; a native query
        referencing it must find the (empty) table.
        """
        with self._lock:
            missing = [n for n in names
                       if n not in self._known and n in self.db.schemas]
            if missing:
                cur = self.conn.cursor()
                for name in missing:
                    self._create_table(cur, name)
                self.conn.commit()

    # -- synchronization -----------------------------------------------

    def rebuild(self) -> None:
        """Drop and reload every relation at the database's clock."""
        with self._lock:
            self._rebuild()

    def _rebuild(self) -> None:
        cur = self.conn.cursor()
        tables = [
            row[0] for row in cur.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'")
            if row[0] not in _INTERNAL_TABLES
        ]
        for table in tables:
            cur.execute(f'DROP TABLE IF EXISTS "{table}"')
        cur.execute(f"DELETE FROM {_DICT_TABLE}")
        cur.execute(f"DELETE FROM {ADOM_TABLE}")
        self._dict_rows = 0
        self._known = set()
        self._stmt_cache.clear()
        encode = self.dictionary.encode
        adom: Counter = Counter()
        for name in self.db.schemas:
            self._create_table(cur, name)
        for name in self.db.relations():
            arity = self.db.schemas[name].arity
            placeholders = ", ".join("?" for _ in range(arity))
            coded = [tuple(encode(v) for v in row)
                     for row in self.db.facts(name)]
            for row in coded:
                adom.update(row)
            cur.executemany(
                f"INSERT OR IGNORE INTO {table_name(name)} "
                f"VALUES ({placeholders})", coded)
        if adom:
            cur.executemany(
                f"INSERT INTO {ADOM_TABLE} VALUES (?, ?)",
                sorted(adom.items()))
        self._persist_dict(cur)
        self._set_meta("clock", str(self.db.clock))
        self._set_meta("format", MIRROR_FORMAT)
        cur.execute("ANALYZE")
        self.conn.commit()
        STATS["pushdown"]["mirror_rebuilds"] += 1

    def _apply(self, log: Changelog) -> None:
        """Changelog listener: one batch, one sqlite transaction.

        ``Changelog`` deltas carry the *net* effect of a batch —
        inserted rows were absent before it, deleted rows present — so
        per-occurrence refcounting keeps ``repro_adom`` exact.
        """
        with self._lock:
            self._apply_locked(log)

    def _apply_locked(self, log: Changelog) -> None:
        cur = self.conn.cursor()
        encode = self.dictionary.encode
        rows = 0
        adom: Counter = Counter()
        for name, delta in log.deltas.items():
            self._ensure_table(cur, name)
            arity = self.db.schemas[name].arity
            table = table_name(name)
            if delta.deleted:
                coded = [tuple(encode(v) for v in row)
                         for row in delta.deleted]
                for row in coded:
                    adom.subtract(row)
                where = " AND ".join(f"c{i} = ?" for i in range(arity))
                cur.executemany(f"DELETE FROM {table} WHERE {where}", coded)
                rows += len(coded)
            if delta.inserted:
                coded = [tuple(encode(v) for v in row)
                         for row in delta.inserted]
                for row in coded:
                    adom.update(row)
                placeholders = ", ".join("?" for _ in range(arity))
                cur.executemany(
                    f"INSERT OR IGNORE INTO {table} "
                    f"VALUES ({placeholders})", coded)
                rows += len(coded)
        changes = [(code, n) for code, n in adom.items() if n]
        if changes:
            cur.executemany(
                f"INSERT INTO {ADOM_TABLE} VALUES (?, ?) "
                "ON CONFLICT(code) DO UPDATE SET "
                "refs = refs + excluded.refs", changes)
            cur.execute(f"DELETE FROM {ADOM_TABLE} WHERE refs <= 0")
            STATS["pushdown"]["adom_delta_rows"] += len(changes)
        self._persist_dict(cur)
        self._set_meta("clock", str(log.version))
        self.conn.commit()
        STATS["pushdown"]["mirror_delta_rows"] += rows

    def refresh_stats(self) -> None:
        """Re-run ``ANALYZE`` (the store calls this at checkpoint)."""
        with self._lock:
            self.conn.execute("ANALYZE")
            self.conn.commit()

    # -- native execution ----------------------------------------------

    def _statement(self, compiled, probe: bool):
        # Keyed like the plan cache: the plan *object* (plans are
        # interned per (formula, free, schema signature) by the LRU
        # plan cache, and holding it as a key also pins it alive, so a
        # recycled id() can never alias a different plan), plus the
        # schema count so a post-attach ``add_relation`` recompiles
        # scans that previously compiled to the empty relation.
        key = (compiled.plan, probe, len(self.db.schemas))
        if self._stmt_capacity:
            hit = self._stmt_cache.get(key)
            if hit is not None:
                self._stmt_cache.move_to_end(key)
                STATS["pushdown"]["stmt_cache_hits"] += 1
                return hit
            STATS["pushdown"]["stmt_cache_misses"] += 1
        stmt = compile_plan(compiled.plan, self.db.schemas,
                            compiled.constants, probe=probe)
        if self._stmt_capacity:
            self._stmt_cache[key] = stmt
            while len(self._stmt_cache) > self._stmt_capacity:
                self._stmt_cache.popitem(last=False)
        return stmt

    def _execute(self, compiled, probe: bool):
        plan = compiled.plan
        if not supports_plan(plan):
            return None
        self.ensure_tables(plan_relations(plan))
        stmt = self._statement(compiled, probe)
        encode = self.dictionary.encode
        params = [encode(v) for v in stmt.params]
        return stmt, self.conn.execute(stmt.sql, params)

    def holds(self, compiled) -> Optional[bool]:
        """Run the boolean probe form; None when unsupported."""
        with self._lock:
            executed = self._execute(compiled, probe=True)
            if executed is None:
                return None
            _, cur = executed
            return bool(cur.fetchone()[0])

    def answers(self, compiled) -> Optional[FrozenSet[Tuple]]:
        """Run the answer form, decoding code columns in bulk."""
        if not compiled.free:
            held = self.holds(compiled)
            return None if held is None else (
                frozenset({()}) if held else frozenset())
        with self._lock:
            executed = self._execute(compiled, probe=False)
            if executed is None:
                return None
            _, cur = executed
            batch = ColumnarRelation.from_code_rows(compiled.free, cur)
        return frozenset(batch.to_rows(self.dictionary))

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Mirror-local facts for ``repro db stats``."""
        tables: Dict[str, Dict[str, int]] = {}
        with self._lock:
            for name in sorted(self._known):
                rows = self.conn.execute(
                    f"SELECT COUNT(*) FROM {table_name(name)}").fetchone()[0]
                indexes = self.conn.execute(
                    "SELECT COUNT(*) FROM sqlite_master "
                    "WHERE type = 'index' AND tbl_name = ?", (name,)
                ).fetchone()[0]
                tables[name] = {"rows": rows, "indexes": indexes}
            adom_values = self.conn.execute(
                f"SELECT COUNT(*) FROM {ADOM_TABLE}").fetchone()[0]
        pushdown = STATS["pushdown"]
        lookups = (pushdown["stmt_cache_hits"]
                   + pushdown["stmt_cache_misses"])
        return {
            "path": str(self.path),
            "format": self._meta("format"),
            "clock": self._meta_clock(),
            "tables": tables,
            "adom_values": adom_values,
            "dictionary_codes": self._dict_rows,
            "stmt_cache": {
                "entries": len(self._stmt_cache),
                "capacity": self._stmt_capacity,
                "hits": pushdown["stmt_cache_hits"],
                "misses": pushdown["stmt_cache_misses"],
                "hit_rate": (round(pushdown["stmt_cache_hits"] / lookups, 4)
                             if lookups else None),
            },
        }

    def close(self) -> None:
        try:
            self.db.unsubscribe(self._apply)
        except Exception:  # pragma: no cover - already unsubscribed
            pass
        with self._lock:
            self.conn.close()


def mirror_capable(db: Database) -> bool:
    """Only an *open* persistent store carries a mirror."""
    return bool(getattr(db, "is_open", False)) and hasattr(db, "storage_status")


def sql_mirror(db: Database) -> Optional[SQLiteMirror]:
    """The database's mirror, attached lazily; ``None`` off-store."""
    if not mirror_capable(db):
        return None
    mirror = getattr(db, _MIRROR_ATTR, None)
    if mirror is None:
        mirror = SQLiteMirror(db, pathlib.Path(db.path) / MIRROR_FILE)
        setattr(db, _MIRROR_ATTR, mirror)
    return mirror


def native_sql_answers(compiled, db: Database) -> Optional[FrozenSet[Tuple]]:
    """Answer rows of a compiled query, entirely inside sqlite.

    ``None`` when the database carries no mirror or the plan has no
    native translation — callers fall back to the legacy formula-SQL
    path (which always loads a fresh in-memory connection; the
    integer-coded mirror cannot run TEXT-encoded formula SQL).
    """
    mirror = sql_mirror(db)
    if mirror is None:
        return None
    result = mirror.answers(compiled)
    if result is not None:
        STATS["pushdown"]["routed_sql"] += 1
        STATS["pushdown"]["native_sql"] += 1
    return result


def native_sql_holds(compiled, db: Database) -> Optional[bool]:
    """Boolean certainty probe inside sqlite; ``None`` when unsupported."""
    mirror = sql_mirror(db)
    if mirror is None:
        return None
    result = mirror.holds(compiled)
    if result is not None:
        STATS["pushdown"]["routed_sql"] += 1
        STATS["pushdown"]["native_sql"] += 1
    return result


def count_legacy_sql() -> None:
    """Account one formula-SQL fallback execution."""
    STATS["pushdown"]["legacy_sql"] += 1


def prefer_sql(compiled, db: Database, config=None) -> bool:
    """Should ``method="auto"`` push this run down to the mirror?

    Checked before :func:`repro.columnar.prefer_columnar`.  Three
    gates: the database must be mirror-backed (plain in-memory
    databases keep their current routing untouched), every plan node
    must have a native SQL translation (QP110 reports the unsupported
    shapes — ``Adom*`` plans now qualify, served by the maintained
    ``repro_adom`` table), and the store must hold at least
    :func:`sql_min_facts` facts.  ``config`` (a
    :class:`repro.obs.RunConfig`) overrides the env-derived size
    threshold — how :class:`repro.obs.ExecutionOptions` reaches this
    gate.
    """
    if not mirror_capable(db):
        return False
    if not supports_plan(compiled.plan):
        STATS["pushdown"]["fallback_unsupported"] += 1
        return False
    threshold = (config.resolved_sql_min_facts() if config is not None
                 else sql_min_facts())
    if db.size() < threshold:
        STATS["pushdown"]["fallback_small"] += 1
        return False
    return True
