"""Compile the relational plan IR to one sqlite SELECT.

This is the native half of the SQL pushdown: instead of re-deriving
SQL from the first-order *formula* (:mod:`repro.fo.sql`, the legacy
fallback), the PV-verified plan IR — the exact tree the in-memory
executors run — is translated node-by-node into a chain of
non-recursive CTEs ending in a single ``SELECT``.  The translation
targets the integer-encoded mirror of :mod:`repro.storage.pushdown`:
every column is a :class:`~repro.columnar.dictionary.ValueDictionary`
code (INTEGER), constants are bound as parameters (encoded per call,
never inlined), and the ``Adom*`` operators read the incrementally
maintained ``repro_adom`` table instead of re-deriving the active
domain per query.

Correctness leans on two invariants:

* **Distinct rows.**  Every CTE holds each row at most once (mirror
  tables have a full-tuple primary key; lossy projections say
  ``DISTINCT``; ``Join`` output is injective in its input pair;
  ``UNION``/``EXCEPT`` are set operators), so SQL bag semantics never
  diverge from the executor's set semantics.
* **Code/value bijection.**  Dictionary codes are injective, so code
  (dis)equality is value (dis)equality; a constant unseen by the
  dictionary binds to a fresh code that matches nothing — exactly the
  executor's behaviour on a value absent from the database.

The distinct-rows invariant also buys the two row-value forms sqlite
optimizes well: semi/anti joins become ``(cols) IN`` / ``NOT IN``
subqueries (the right side is materialized into one transient index
instead of a correlated probe per row — safe because codes are never
NULL), and ``Difference`` becomes a ``NOT IN`` filter over its
already-distinct left side.  One algebraic identity is applied during
translation: a semijoin of a source against a projection *of that same
source* is the source itself (and the antijoin is empty) — rewritings
produce this shape whenever a guard re-checks values it generated, and
sqlite cannot discover the identity from the text.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.atoms import RelationSchema
from ..fo import plan as ir
from ..fo.sql import table_name

__all__ = ["CompiledSQL", "compile_plan", "plan_relations", "supports_plan",
           "ADOM_TABLE"]

#: The physical active-domain table the mirror maintains from deltas.
ADOM_TABLE = "repro_adom"

#: CTE alias for the per-query active domain (``repro_adom`` plus the
#: plan's constants, mirroring ``Executor.adom``).
_ADOM_CTE = "_adom"

_SUPPORTED = frozenset((
    ir.Scan, ir.Literal, ir.AdomProduct, ir.AdomGuard, ir.AdomEq,
    ir.Select, ir.Project, ir.Join, ir.SemiJoin, ir.AntiJoin,
    ir.Union, ir.Difference,
))


def supports_plan(plan: ir.Plan) -> bool:
    """Does every node of *plan* have a native SQL translation?

    Exact-type membership, not ``isinstance``: an unknown subclass may
    override execution semantics, so it must not silently inherit its
    parent's translation.
    """
    return all(type(node) in _SUPPORTED for node in ir.plan_nodes(plan))


def plan_relations(plan: ir.Plan) -> Set[str]:
    """The relation names the plan scans (tables the query references)."""
    return {node.atom.relation for node in ir.plan_nodes(plan)
            if isinstance(node, ir.Scan)}


class CompiledSQL:
    """One parameterized statement compiled from a plan.

    ``params`` holds *raw* values in placeholder order; the mirror
    encodes them to dictionary codes at bind time, so the SQL text is
    stable across calls and sqlite's prepared-statement cache gets
    genuine reuse.
    """

    __slots__ = ("sql", "params", "uses_adom", "width")

    def __init__(self, sql: str, params: Tuple[object, ...],
                 uses_adom: bool, width: int):
        self.sql = sql
        self.params = params
        self.uses_adom = uses_adom
        self.width = width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledSQL({len(self.params)} params)\n{self.sql}"


class _Builder:
    """Post-order plan walk emitting one CTE per distinct node.

    Parameters are appended while each CTE body is built and bodies are
    concatenated in creation order, so placeholder order in the final
    text equals append order — the contract of positional binding.
    """

    def __init__(self, schemas: Mapping[str, RelationSchema]):
        self.schemas = schemas
        self.ctes: List[Tuple[str, str]] = []
        self.params: List[object] = []
        self.uses_adom = False
        self._memo: Dict[object, str] = {}

    # -- helpers -------------------------------------------------------

    def _emit(self, body: str) -> str:
        name = f"_p{len(self.ctes)}"
        self.ctes.append((name, body))
        return name

    @staticmethod
    def _sel(width: int, prefix: str = "") -> str:
        """Pass-through select list for a node of the given width."""
        if width == 0:
            return f"{prefix}u AS u" if prefix else "u"
        return ", ".join(f"{prefix}c{j} AS c{j}" if prefix else f"c{j}"
                         for j in range(width))

    def _empty(self, width: int) -> str:
        if width == 0:
            return "SELECT 1 AS u WHERE 0"
        cols = ", ".join(f"0 AS c{j}" for j in range(width))
        return f"SELECT {cols} WHERE 0"

    # -- dispatch ------------------------------------------------------

    @staticmethod
    def _scan_key(node: ir.Scan) -> Tuple:
        return (node.atom.relation, node.atom.schema.arity,
                tuple(sorted(node.consts.items(), key=repr)),
                node.eq_checks, node.proj)

    @staticmethod
    def _peel_projects(node: ir.Plan) -> ir.Plan:
        # A chain of Projects composes to one projection determined by
        # the final column variables alone.
        while type(node) is ir.Project:
            node = node.child
        return node

    def _same_source(self, a: ir.Plan, b: ir.Plan) -> bool:
        """Do *a* and *b* compute projections of the same relation?

        True when, after peeling pure projections, both sides are the
        same node object or structurally identical scans.  Every row of
        a projection of X restricted to any subset of X's columns lies
        in the matching projection of X, so a semijoin between the two
        is the identity and an antijoin is empty.
        """
        a = self._peel_projects(a)
        b = self._peel_projects(b)
        if a is b:
            return True
        if type(a) is ir.Scan and type(b) is ir.Scan:
            return self._scan_key(a) == self._scan_key(b)
        return False

    def compile(self, node: ir.Plan) -> str:
        # Memoize by node identity so a multiply-referenced subtree
        # shares one CTE.  Scans are the exception: every reference
        # gets its own single-use CTE, which sqlite flattens into
        # direct indexed access on the base table — a shared scan CTE
        # would be materialized as an unindexed temporary instead.
        if type(node) is ir.Scan:
            return self._scan(node)
        hit = self._memo.get(id(node))
        if hit is not None:
            return hit
        name = self._dispatch(node)
        self._memo[id(node)] = name
        return name

    def _dispatch(self, node: ir.Plan) -> str:
        if type(node) is ir.Scan:
            return self._scan(node)
        if type(node) is ir.Literal:
            return self._literal(node)
        if type(node) is ir.AdomProduct:
            return self._adom_product(node)
        if type(node) is ir.AdomGuard:
            self.uses_adom = True
            return self._emit(
                f"SELECT 1 AS u WHERE EXISTS (SELECT 1 FROM {_ADOM_CTE})")
        if type(node) is ir.AdomEq:
            self.uses_adom = True
            return self._emit(
                f"SELECT a.v AS c0, a.v AS c1 FROM {_ADOM_CTE} a")
        if type(node) is ir.Select:
            return self._select(node)
        if type(node) is ir.Project:
            return self._project(node)
        if type(node) is ir.Join:
            return self._join(node)
        if type(node) is ir.SemiJoin:
            return self._semi(node, anti=False)
        if type(node) is ir.AntiJoin:
            return self._semi(node, anti=True)
        if type(node) is ir.Union:
            return self._union(node)
        if type(node) is ir.Difference:
            return self._difference(node)
        raise ir.PlanError(
            f"no SQL translation for {type(node).__name__}")

    # -- leaves --------------------------------------------------------

    def _scan(self, node: ir.Scan) -> str:
        schema = self.schemas.get(node.atom.relation)
        if schema is None or schema.arity != node.atom.schema.arity:
            # Executor semantics: a missing or arity-mismatched
            # relation scans empty.
            return self._emit(self._empty(len(node.cols)))
        conds = []
        for i in sorted(node.consts):
            conds.append(f"t.c{i} = ?")
            self.params.append(node.consts[i])
        conds.extend(f"t.c{a} = t.c{b}" for a, b in node.eq_checks)
        if node.proj:
            sel = ", ".join(f"t.c{p} AS c{k}"
                            for k, p in enumerate(node.proj))
        else:
            sel = "1 AS u"
        # The table's full-tuple primary key keeps rows distinct; a
        # lossy projection needs an explicit DISTINCT.
        distinct = "DISTINCT " if len(node.proj) < schema.arity else ""
        where = f" WHERE {' AND '.join(conds)}" if conds else ""
        return self._emit(
            f"SELECT {distinct}{sel} "
            f"FROM {table_name(node.atom.relation)} t{where}")

    def _literal(self, node: ir.Literal) -> str:
        rows = sorted(node.rows, key=repr)
        if not node.cols:
            return self._emit("SELECT 1 AS u" if rows
                              else "SELECT 1 AS u WHERE 0")
        if not rows:
            return self._emit(self._empty(len(node.cols)))
        width = len(node.cols)
        tuples = ", ".join(
            "(" + ", ".join("?" for _ in range(width)) + ")"
            for _ in rows)
        for row in rows:
            self.params.extend(row)
        sel = ", ".join(f"column{j + 1} AS c{j}" for j in range(width))
        return self._emit(f"SELECT {sel} FROM (VALUES {tuples})")

    def _adom_product(self, node: ir.AdomProduct) -> str:
        width = len(node.cols)
        if width == 0:
            # itertools.product(repeat=0) yields the empty tuple once.
            return self._emit("SELECT 1 AS u")
        self.uses_adom = True
        sel = ", ".join(f"a{j}.v AS c{j}" for j in range(width))
        frm = ", ".join(f"{_ADOM_CTE} a{j}" for j in range(width))
        return self._emit(f"SELECT {sel} FROM {frm}")

    # -- unary ---------------------------------------------------------

    def _select(self, node: ir.Select) -> str:
        child = self.compile(node.child)
        conds = []
        for lhs, rhs, equal in node.conds:
            op = "=" if equal else "<>"
            conds.append(f"{self._operand(lhs)} {op} {self._operand(rhs)}")
        sel = self._sel(len(node.cols))
        return self._emit(
            f"SELECT {sel} FROM {child} WHERE {' AND '.join(conds)}")

    def _operand(self, operand: ir.Operand) -> str:
        kind, payload = operand
        if kind == "col":
            return f"c{payload}"
        self.params.append(payload)
        return "?"

    def _project(self, node: ir.Project) -> str:
        child = self.compile(node.child)
        if not node.cols:
            return self._emit(f"SELECT DISTINCT 1 AS u FROM {child}")
        sel = ", ".join(f"c{p} AS c{k}"
                        for k, p in enumerate(node.positions))
        # A permutation of distinct child rows stays distinct.
        lossless = (len(set(node.positions)) == len(node.positions)
                    and len(node.positions) == len(node.child.cols))
        distinct = "" if lossless else "DISTINCT "
        return self._emit(f"SELECT {distinct}{sel} FROM {child}")

    # -- binary --------------------------------------------------------

    def _join(self, node: ir.Join) -> str:
        left = self.compile(node.left)
        right = self.compile(node.right)
        if node.emit:
            sel = ", ".join(
                f"{'l' if side == 0 else 'r'}.c{i} AS c{k}"
                for k, (side, i) in enumerate(node.emit))
        else:
            sel = "1 AS u"
        conds = [
            f"l.c{node.left.cols.index(v)} = r.c{node.right.cols.index(v)}"
            for v in node.shared
        ]
        where = f" WHERE {' AND '.join(conds)}" if conds else ""
        return self._emit(
            f"SELECT {sel} FROM {left} l, {right} r{where}")

    def _semi(self, node, anti: bool) -> str:
        if self._same_source(node.left, node.right):
            # Every left row's shared-column projection is in the
            # right side by construction: the semijoin is the left
            # input itself, the antijoin is empty.
            if anti:
                return self._emit(self._empty(len(node.cols)))
            return self.compile(node.left)
        left = self.compile(node.left)
        right = self.compile(node.right)
        sel = self._sel(len(node.cols), prefix="l.")
        shared = node.shared
        if not shared:
            keyword = "NOT EXISTS" if anti else "EXISTS"
            return self._emit(
                f"SELECT {sel} FROM {left} l "
                f"WHERE {keyword} (SELECT 1 FROM {right})")
        # Row-value (NOT) IN: sqlite materializes the right side into
        # one transient index instead of probing per left row.  Codes
        # are INTEGER NOT NULL throughout, so NOT IN is exact.
        lhs = ", ".join(f"l.c{node.left.cols.index(v)}" for v in shared)
        if len(shared) > 1:
            lhs = f"({lhs})"
        rhs = ", ".join(f"c{node.right.cols.index(v)}" for v in shared)
        op = "NOT IN" if anti else "IN"
        return self._emit(
            f"SELECT {sel} FROM {left} l "
            f"WHERE {lhs} {op} (SELECT {rhs} FROM {right})")

    def _union(self, node: ir.Union) -> str:
        sel = self._sel(len(node.cols))
        parts = [f"SELECT {sel} FROM {self.compile(part)}"
                 for part in node.parts]
        return self._emit(" UNION ".join(parts))

    def _difference(self, node: ir.Difference) -> str:
        width = len(node.cols)
        if self._same_source(node.left, node.right):
            # Identical columns over the same source: X - X = empty.
            return self._emit(self._empty(width))
        sel = self._sel(width)
        left = self.compile(node.left)
        right = self.compile(node.right)
        if width == 0:
            return self._emit(
                f"SELECT u FROM {left} "
                f"WHERE NOT EXISTS (SELECT 1 FROM {right})")
        # The left side is already distinct (module invariant), so a
        # NOT IN filter equals EXCEPT while letting sqlite build one
        # transient index over the right side.
        lhs = ", ".join(f"c{j}" for j in range(width))
        if width > 1:
            lhs = f"({lhs})"
        return self._emit(
            f"SELECT {sel} FROM {left} "
            f"WHERE {lhs} NOT IN (SELECT {sel} FROM {right})")


def compile_plan(plan: ir.Plan, schemas: Mapping[str, RelationSchema],
                 constants: Sequence[object] = (),
                 probe: bool = False) -> CompiledSQL:
    """One parameterized SELECT computing ``execute_plan(plan, db)``.

    ``constants`` are the compiled query's constant values; they join
    ``repro_adom`` in the active-domain CTE exactly as the executor
    unions them into its ``adom`` (so an ``Adom*`` node ranges over the
    same set even when a constant is absent from the database).  With
    ``probe=True`` (or a nullary plan) the statement returns a single
    0/1 row — the short-circuit boolean form.
    """
    builder = _Builder(schemas)
    root = builder.compile(plan)
    if probe or not plan.cols:
        final = f"SELECT EXISTS (SELECT 1 FROM {root})"
        width = 0
    else:
        width = len(plan.cols)
        sel = ", ".join(f"c{j}" for j in range(width))
        final = f"SELECT {sel} FROM {root}"
    params: List[object] = builder.params
    ctes = [f"{name} AS ({body})" for name, body in builder.ctes]
    if builder.uses_adom:
        union = ["SELECT code AS v FROM " + ADOM_TABLE]
        union.extend("SELECT ?" for _ in constants)
        ctes.insert(0, f"{_ADOM_CTE}(v) AS ({' UNION '.join(union)})")
        params = list(constants) + params
    sql = "WITH " + ",\n     ".join(ctes) + "\n" + final
    return CompiledSQL(sql, tuple(params), builder.uses_adom, width)
