"""The persistent database: WAL-backed durability behind the Database API.

:class:`PersistentDatabase` subclasses :class:`repro.db.database.Database`
— every engine tier (interpreted, compiled, columnar, parallel, SQL)
accepts it unchanged — and adds a durable storage generation under one
directory::

    <store>/
      snapshot-<clock>.snap   # atomic relation image (repro.storage.snapshot)
      wal-<base>.log          # records with LSN > base (repro.storage.wal)
      views.json              # registered-view manifest (re-registered on open)
      mirror.sqlite           # SQL-pushdown mirror (repro.storage.pushdown)

Durability protocol
-------------------
Every genuine mutation (or committed batch) already produces one
:class:`~repro.db.changelog.Changelog` on the database's change-capture
layer; the store subscribes the WAL appender as the *first* changelog
listener, so the batch is framed, CRC'd, and (under ``sync="always"``)
fsynced **before** any other subscriber — incremental views, the SQL
mirror — observes it.  The record's LSN is the changelog clock at
commit time: one committed batch, one durable LSN, no translation
between the in-memory and on-disk orderings.

Recovery (:meth:`PersistentDatabase.open`) loads the newest readable
snapshot, replays every WAL record with ``lsn > clock`` in LSN order,
truncates a torn tail (see :mod:`repro.storage.wal`), and finally
forces the clock to the last durable LSN — the *prefix-consistent
clock* the chaos suite asserts: the recovered state is exactly the
state after some prefix of committed batches, never a partial batch.

Registered views are part of the durable state: specs recorded through
:meth:`register_view` land in ``views.json`` and are re-registered
(and thus re-materialized against the recovered facts) on open.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.atoms import Atom, RelationSchema
from ..core.query import Diseq, Query
from ..core.terms import Constant, Variable, is_variable
from ..db.changelog import Changelog
from ..db.database import BatchError, Database
from ..db.io import PathLike, _freeze, _thaw
from .snapshot import (
    SnapshotError,
    list_snapshots,
    read_snapshot,
    snapshot_clock,
    write_snapshot,
)
from .stats import STATS
from .wal import (
    HEADER_SIZE,
    WalWriter,
    list_segments,
    scan_wal,
    segment_base,
    wal_sync_mode,
)

__all__ = ["StorageError", "PersistentDatabase", "open_database",
           "verify_store", "query_to_dict", "query_from_dict",
           "checkpoint_threshold_bytes", "DEFAULT_CHECKPOINT_BYTES"]

_VIEWS_FILE = "views.json"
_STORE_GLOBS = ("snapshot-*.snap", "wal-*.log", _VIEWS_FILE)

#: Past this many live WAL bytes, a checkpoint is overdue (QP111).
DEFAULT_CHECKPOINT_BYTES = 16 * 1024 * 1024


def checkpoint_threshold_bytes() -> int:
    """The ``REPRO_WAL_CHECKPOINT_BYTES`` compaction-overdue threshold."""
    raw = os.environ.get("REPRO_WAL_CHECKPOINT_BYTES", "").strip()
    return int(raw) if raw.isdigit() else DEFAULT_CHECKPOINT_BYTES


class StorageError(RuntimeError):
    """Raised on unusable store directories or closed-store misuse."""


# ----------------------------------------------------------------------
# query (de)serialization for the view manifest
# ----------------------------------------------------------------------


def _term_to_dict(term: Any) -> Dict[str, Any]:
    if is_variable(term):
        return {"v": term.name}
    return {"c": _thaw(term.value)}


def _term_from_dict(spec: Dict[str, Any]) -> Any:
    if "v" in spec:
        return Variable(spec["v"])
    return Constant(_freeze(spec["c"]))


def _atom_to_dict(atom: Atom) -> Dict[str, Any]:
    return {
        "relation": atom.relation,
        "arity": atom.schema.arity,
        "key": atom.schema.key_size,
        "terms": [_term_to_dict(t) for t in atom.terms],
    }


def _atom_from_dict(spec: Dict[str, Any]) -> Atom:
    schema = RelationSchema(spec["relation"], int(spec["arity"]),
                            int(spec["key"]))
    return Atom(schema, [_term_from_dict(t) for t in spec["terms"]])


def query_to_dict(query: Query) -> Dict[str, Any]:
    """A JSON-ready structural encoding of one sjfBCQ¬≠ query."""
    return {
        "positives": [_atom_to_dict(a) for a in query.positives],
        "negatives": [_atom_to_dict(a) for a in query.negatives],
        "diseqs": [
            [[_term_to_dict(lhs), _term_to_dict(rhs)] for lhs, rhs in d.pairs]
            for d in query.diseqs
        ],
    }


def query_from_dict(spec: Dict[str, Any]) -> Query:
    """Invert :func:`query_to_dict`."""
    return Query(
        positives=[_atom_from_dict(a) for a in spec["positives"]],
        negatives=[_atom_from_dict(a) for a in spec["negatives"]],
        diseqs=[
            Diseq([(_term_from_dict(lhs), _term_from_dict(rhs))
                   for lhs, rhs in pairs])
            for pairs in spec.get("diseqs", [])
        ],
    )


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------


def _auto_checkpoint_bytes(explicit: Optional[int]) -> Optional[int]:
    """The auto-checkpoint threshold: argument, else env, else off."""
    if explicit is not None:
        return explicit if explicit > 0 else None
    raw = os.environ.get("REPRO_WAL_AUTOCHECKPOINT_BYTES", "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return None


class PersistentDatabase(Database):
    """A :class:`Database` whose committed state survives the process.

    Parameters
    ----------
    path:
        The store directory (created if missing).
    sync:
        ``"always"`` (default; every commit fsyncs before returning) or
        ``"off"``; ``None`` reads ``REPRO_WAL_SYNC``.
    tracer:
        Optional :class:`repro.obs.Tracer`; records ``wal-replay``,
        ``wal-commit``, and ``checkpoint`` spans.
    auto_checkpoint_bytes:
        Checkpoint automatically once the live WAL segment exceeds this
        many bytes (``None``: manual checkpoints only; env fallback
        ``REPRO_WAL_AUTOCHECKPOINT_BYTES``).
    create:
        When False, refuse a directory that is not already a store.
    """

    def __init__(self, path: PathLike, sync: Optional[str] = None,
                 tracer=None, auto_checkpoint_bytes: Optional[int] = None,
                 create: bool = True):
        from ..obs.trace import NULL_TRACER

        super().__init__()
        self.path = pathlib.Path(path)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._sync = wal_sync_mode(sync)
        self._auto_checkpoint = _auto_checkpoint_bytes(auto_checkpoint_bytes)
        self._wal: Optional[WalWriter] = None
        self._replaying = False
        self._closed = True
        self._snapshot_clock = 0
        self._wal_records = 0
        self._view_specs: List[Dict[str, Any]] = []
        self._views: List[Any] = []
        self.last_recovery: Dict[str, Any] = {}
        self.open(create=create)

    # -- lifecycle -----------------------------------------------------

    @property
    def is_open(self) -> bool:
        return not self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(f"store {self.path} is closed")

    def open(self, create: bool = True) -> None:
        """Recover the durable state and start accepting commits.

        Idempotent across close/open cycles on one object: all
        in-memory state (facts, versions, clock, lazy indexes, the
        columnar store and its scan caches) is rebuilt from disk, so a
        reopened store never serves cache entries from its previous
        life.
        """
        if not self._closed:
            raise StorageError(f"store {self.path} is already open")
        exists = self.path.is_dir() and any(
            True for pattern in _STORE_GLOBS for _ in self.path.glob(pattern)
        )
        if not exists and not create:
            raise StorageError(f"{self.path} is not a repro store")
        self.path.mkdir(parents=True, exist_ok=True)
        # Rebuild the Database layer from scratch and drop the lazily
        # attached columnar store: its version-tagged scan caches are
        # meaningless against the recovered version counters (the
        # discard_all/replay regression in tests/test_storage_store.py).
        Database.__init__(self)
        if hasattr(self, "_columnar_store"):
            delattr(self, "_columnar_store")
        self._views = []
        self._view_specs = []
        self._wal_records = 0
        t0 = time.perf_counter()
        self._replaying = True
        try:
            with self._tracer.span("wal-replay"):
                snapshot = self._load_latest_snapshot()
                replayed = self._replay_segments()
        finally:
            self._replaying = False
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        self._closed = False
        self.subscribe(self._on_commit)
        self._load_views()
        # Stale temp files from an interrupted checkpoint.
        for leftover in self.path.glob("snapshot-*.tmp"):
            leftover.unlink()
        STATS["replays"] += 1
        STATS["replayed_records"] += replayed
        STATS["replay_ms"] += elapsed_ms
        self.last_recovery = {
            "snapshot_clock": snapshot,
            "replayed_records": replayed,
            "replay_ms": elapsed_ms,
            "clock": self._clock,
        }

    def _load_latest_snapshot(self) -> int:
        """Load the newest readable snapshot; returns its clock (0: none)."""
        for path in reversed(list_snapshots(self.path)):
            try:
                clock, schemas, facts = read_snapshot(path)
            except SnapshotError:
                continue
            for schema in schemas:
                Database.add_relation(self, schema)
            for name, rows in facts.items():
                if rows:
                    self._facts[name] = set(rows)
                    self._versions[name] = 1
            self._clock = clock
            self._snapshot_clock = clock
            return clock
        self._snapshot_clock = 0
        return 0

    def _replay_segments(self) -> int:
        """Apply every durable record with ``lsn > clock``, in order.

        The last segment may carry a torn tail (truncated when the
        writer opens it).  Damage in an *earlier* segment ends the
        consistent prefix there: the segment is truncated and every
        later segment discarded, so the next recovery sees the same
        prefix.
        """
        segments = list_segments(self.path)
        applied = 0
        cut_off = False
        last_base: Optional[int] = None
        for i, segment in enumerate(segments):
            if cut_off:
                segment.unlink()
                continue
            base, records, good, damage = scan_wal(segment)
            last_base = base
            for record in records:
                applied += self._apply_record(record) or 0
            self._wal_records += len(records)
            if damage is not None and i < len(segments) - 1:
                # Mid-stream damage: truncate here, drop the rest.
                with open(segment, "r+b") as fp:
                    fp.truncate(good)
                STATS["torn_tails"] += 1
                cut_off = True
        if last_base is None:
            last_base = self._snapshot_clock
        self._wal, _ = WalWriter.open(self.path, last_base, self._sync)
        return applied

    def _apply_record(self, record: Tuple[Any, ...]) -> int:
        kind, lsn = record[0], record[1]
        if kind == "S":
            _, _, name, arity, key_size = record
            Database.add_relation(self, RelationSchema(name, arity, key_size))
            return 0
        if kind != "B":  # pragma: no cover - scan_wal filters these
            raise StorageError(f"unknown WAL record kind {kind!r}")
        if lsn <= self._clock:
            return 0  # already in the snapshot (or a replayed prefix)
        deltas = record[2]
        for relation, (inserted, deleted) in deltas.items():
            if relation not in self.schemas:
                raise StorageError(
                    f"WAL batch at LSN {lsn} touches unregistered "
                    f"relation {relation!r}")
            if deleted:
                self.discard_all(relation, deleted)
            if inserted:
                self.add_all(relation, inserted)
        # The in-memory clock advanced by the number of net mutations
        # just applied; pin it to the durable LSN so recovered clocks
        # are prefix-consistent with the writing process's history.
        self._clock = lsn
        return 1

    def close(self) -> None:
        """Flush and stop.  Committed batches are already durable; the
        store object can be reopened with :meth:`open`."""
        if self._closed:
            return
        if self.in_batch:
            raise BatchError("cannot close with an open batch; commit first")
        mirror = getattr(self, "_sql_mirror", None)
        if mirror is not None:
            mirror.close()
            delattr(self, "_sql_mirror")
        # Retire any warm forked worker pools and cached shard layouts
        # still pinned to this object, so close/reopen cycles in a
        # long-running process never leak worker processes.
        from ..parallel import release_database

        release_database(self)
        self.unsubscribe(self._on_commit)
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        self._closed = True

    def __enter__(self) -> "PersistentDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- logging -------------------------------------------------------

    def _changed(self, relation: str, inserted: Iterable[Tuple] = (),
                 deleted: Iterable[Tuple] = ()) -> None:
        # Refuse mutations on a closed store: silently accepted writes
        # would never reach the WAL.  (Reopening rebuilds the in-memory
        # state from disk, discarding whatever the caller half-did.)
        if self._closed and not self._replaying:
            raise StorageError(
                f"store {self.path} is closed; reopen before mutating")
        super()._changed(relation, inserted, deleted)

    def add_relation(self, schema: RelationSchema) -> None:
        is_new = schema.name not in self.schemas
        super().add_relation(schema)
        if is_new and not self._replaying:
            self._require_open()
            assert self._wal is not None
            self._wal.append(("S", self._clock, schema.name, schema.arity,
                              schema.key_size))
            self._wal_records += 1

    def _on_commit(self, log: Changelog) -> None:
        if self._replaying:
            return
        if self._wal is None:
            raise StorageError(
                f"store {self.path} is closed; reopen before mutating")
        record = ("B", log.version, {
            name: (list(delta.inserted), list(delta.deleted))
            for name, delta in log.deltas.items()
        })
        with self._tracer.span("wal-commit", lsn=log.version,
                               rows=log.rows_touched()):
            self._wal.append(record)
        self._wal_records += 1
        STATS["commits"] += 1
        if (self._auto_checkpoint is not None and not self.in_batch
                and self._wal.size >= self._auto_checkpoint):
            self.checkpoint()

    # -- checkpointing -------------------------------------------------

    def checkpoint(self) -> int:
        """Write an atomic snapshot at the current clock and prune the
        WAL.  Returns the snapshot's size in bytes."""
        self._require_open()
        if self.in_batch:
            raise BatchError("cannot checkpoint inside an open batch")
        assert self._wal is not None
        t0 = time.perf_counter()
        with self._tracer.span("checkpoint", clock=self._clock):
            size = write_snapshot(self.path, self._clock, self.schemas,
                                  self._facts)
            self._snapshot_clock = self._clock
            self._wal.close()
            self._wal, _ = WalWriter.open(self.path, self._clock, self._sync)
            self._wal_records = 0
            for segment in list_segments(self.path):
                if (segment != self._wal.path
                        and segment_base(segment) < self._clock):
                    segment.unlink()
                    STATS["wal_pruned"] += 1
            for snap in list_snapshots(self.path):
                if snapshot_clock(snap) < self._clock:
                    snap.unlink()
            mirror = getattr(self, "_sql_mirror", None)
            if mirror is not None:
                mirror.refresh_stats()
        STATS["checkpoints"] += 1
        STATS["snapshot_bytes"] = size
        STATS["snapshot_ms"] += (time.perf_counter() - t0) * 1000.0
        return size

    # -- views ---------------------------------------------------------

    def register_view(self, query: Query, free: Sequence[Variable] = ()):
        """Register a materialized view *durably*: the spec is recorded
        in the store manifest and re-registered on every open."""
        from ..incremental import view_manager

        self._require_open()
        view = view_manager(self).register_view(query, list(free))
        spec = {"query": query_to_dict(query),
                "free": [v.name for v in free]}
        if spec not in self._view_specs:
            self._view_specs.append(spec)
            self._write_views_manifest()
        self._views.append(view)
        return view

    @property
    def views(self) -> Tuple[Any, ...]:
        """The re-registered view objects, in manifest order."""
        return tuple(self._views)

    def _views_path(self) -> pathlib.Path:
        return self.path / _VIEWS_FILE

    def _write_views_manifest(self) -> None:
        tmp = self.path / (_VIEWS_FILE + ".tmp")
        tmp.write_text(json.dumps({"views": self._view_specs}, indent=2,
                                  sort_keys=True) + "\n")
        os.rename(tmp, self._views_path())

    def _load_views(self) -> None:
        from ..incremental import view_manager

        path = self._views_path()
        if not path.exists():
            return
        manifest = json.loads(path.read_text())
        self._view_specs = list(manifest.get("views", []))
        manager = view_manager(self)
        for spec in self._view_specs:
            query = query_from_dict(spec["query"])
            free = [Variable(name) for name in spec["free"]]
            self._views.append(manager.register_view(query, free))

    # -- inspection ----------------------------------------------------

    def storage_status(self) -> Dict[str, Any]:
        """One dict of durable-state vitals (CLI ``repro db open`` and
        the QP111 analysis rule read this)."""
        segments = list_segments(self.path)
        wal_bytes = sum(
            max(0, seg.stat().st_size - HEADER_SIZE) for seg in segments
            if seg.exists()
        )
        return {
            "path": str(self.path),
            "open": self.is_open,
            "clock": self._clock,
            "snapshot_clock": self._snapshot_clock,
            "wal_records": self._wal_records,
            "wal_bytes": wal_bytes,
            "wal_segments": len(segments),
            "facts": self.size(),
            "relations": len(self.schemas),
            "views": len(self._view_specs),
            "sync": self._sync,
        }

    def __repr__(self) -> str:
        state = "open" if self.is_open else "closed"
        return (f"PersistentDatabase({str(self.path)!r}, {state}, "
                f"clock={self._clock}, {self.size()} facts)")


def open_database(path: PathLike, **kwargs) -> PersistentDatabase:
    """Open an existing store (refuses a directory that is not one)."""
    return PersistentDatabase(path, create=False, **kwargs)


# ----------------------------------------------------------------------
# offline verification
# ----------------------------------------------------------------------


def verify_store(path: PathLike, integrity: bool = False) -> Dict[str, Any]:
    """Non-destructive health check of a store directory.

    Always performs the CRC sweep: every snapshot is decoded and every
    WAL segment scanned frame by frame; a torn tail on the *last*
    segment is recoverable (reported, still ``ok``), damage anywhere
    else is not.  With ``integrity=True`` the consistent prefix is
    additionally replayed into a scratch in-memory database and audited
    against the schema layer: arity mismatches are errors, and the
    primary-key audit reports how many blocks violate their key (an
    inconsistency *measure*, not an error — dirty databases are this
    engine's subject matter).
    """
    directory = pathlib.Path(path)
    report: Dict[str, Any] = {
        "path": str(directory), "ok": True,
        "snapshots": [], "segments": [], "errors": [],
    }
    if not directory.is_dir():
        report["ok"] = False
        report["errors"].append(f"{directory} is not a directory")
        return report
    usable_snapshot: Optional[Tuple[int, list, dict]] = None
    for snap in list_snapshots(directory):
        entry: Dict[str, Any] = {"file": snap.name}
        try:
            clock, schemas, facts = read_snapshot(snap)
            entry["ok"] = True
            entry["clock"] = clock
            entry["facts"] = sum(len(rows) for rows in facts.values())
            usable_snapshot = (clock, schemas, facts)
        except SnapshotError as exc:
            entry["ok"] = False
            entry["error"] = str(exc)
            report["errors"].append(str(exc))
        report["snapshots"].append(entry)
    if report["snapshots"] and not report["snapshots"][-1]["ok"]:
        # The newest snapshot must load; older corrupt ones are moot.
        report["ok"] = False
    segments = list_segments(directory)
    all_records: List[Tuple[Any, ...]] = []
    for i, segment in enumerate(segments):
        base, records, good, damage = scan_wal(segment)
        entry = {"file": segment.name, "base": base,
                 "records": len(records), "damage": damage}
        report["segments"].append(entry)
        all_records.extend(records)
        if damage is not None and i < len(segments) - 1:
            report["ok"] = False
            report["errors"].append(
                f"{segment.name}: mid-stream damage: {damage}")
            break
    if integrity:
        report["integrity"] = _integrity_audit(usable_snapshot, all_records)
        if report["integrity"]["errors"]:
            report["ok"] = False
            report["errors"].extend(report["integrity"]["errors"])
    return report


def _integrity_audit(snapshot: Optional[Tuple[int, list, dict]],
                     records: Iterable[Tuple[Any, ...]]) -> Dict[str, Any]:
    """Replay the consistent prefix in memory and audit the result."""
    db = Database()
    clock = 0
    errors: List[str] = []
    if snapshot is not None:
        clock, schemas, facts = snapshot
        for schema in schemas:
            db.add_relation(schema)
        for name, rows in facts.items():
            for row in rows:
                try:
                    db.add(name, row)
                except ValueError as exc:
                    errors.append(f"snapshot: {exc}")
    recovered = clock
    for record in records:
        kind, lsn = record[0], record[1]
        if kind == "S":
            _, _, name, arity, key_size = record
            try:
                db.add_relation(RelationSchema(name, arity, key_size))
            except ValueError as exc:
                errors.append(f"LSN {lsn}: {exc}")
            continue
        if lsn <= recovered:
            continue
        for relation, (inserted, deleted) in record[2].items():
            try:
                if deleted:
                    db.discard_all(relation, deleted)
                if inserted:
                    db.add_all(relation, inserted)
            except ValueError as exc:
                errors.append(f"LSN {lsn}: {relation}: {exc}")
        recovered = lsn
    violating_blocks = 0
    for relation in db.relations():
        violating_blocks += sum(
            1 for rows in db.blocks(relation).values() if len(rows) > 1
        )
    return {
        "recovered_clock": recovered,
        "facts": db.size(),
        "relations": len(db.schemas),
        "key_violating_blocks": violating_blocks,
        "consistent": db.is_consistent,
        "repairs": db.repair_count() if db.size() <= 2000 else None,
        "errors": errors,
    }
