"""The write-ahead log: length+CRC32-framed changelog batches on disk.

Every committed changelog batch of a :class:`~repro.storage.store.
PersistentDatabase` becomes exactly one WAL record whose LSN *is* the
database's monotone changelog clock at commit time
(:attr:`repro.db.database.Database.clock`), so the durable history and
the in-memory change-capture layer share one ordering and incremental
views can resume from a recovered clock without translation.

Record framing (all integers little-endian)::

    +----------+----------+------------------+
    | length   | crc32    | payload          |
    | 4 bytes  | 4 bytes  | `length` bytes   |
    +----------+----------+------------------+

The payload is a ``marshal``-encoded tuple — the same serializer the
fork-pool uses for answer rows (:mod:`repro.parallel.pool`), several
times faster than pickle on tuples of primitive values — of one of::

    ("B", lsn, {relation: ([inserted rows], [deleted rows]), ...})
    ("S", lsn, relation, arity, key_size)

``"B"`` records are committed batches; ``"S"`` records are schema
registrations (``add_relation`` does not move the clock, so they carry
the clock observed at registration and replay idempotently).

Durability and recovery:

* ``sync="always"`` (the default, env ``REPRO_WAL_SYNC``) issues
  ``fsync`` after every appended record, so a record returned from
  :meth:`WalWriter.append` survives ``kill -9`` and power loss;
  ``sync="off"`` leaves flushing to the OS (benchmarks, bulk loads).
* A crash can leave a *torn tail*: a final record whose frame or
  payload is incomplete or whose CRC does not match.  :func:`scan_wal`
  stops at the first damaged frame and reports the byte offset of the
  last good record; :meth:`WalWriter.open` truncates the file there,
  so exactly the committed prefix survives and no partial batch is
  ever replayed.

Crash injection (the chaos suite's hook): ``REPRO_WAL_CRASH_AT=<n>``
arms a process-wide budget of *n* bytes across all WAL writes; the
write that would exceed it is cut short at the byte boundary, flushed,
fsynced, and the process exits hard (``os._exit``) — a deterministic,
byte-precise simulation of dying mid-write with a torn record on disk.
"""

from __future__ import annotations

import io
import marshal
import os
import pathlib
import struct
from typing import Any, List, Optional, Tuple

from .stats import STATS

__all__ = ["WalError", "WalWriter", "scan_wal", "segment_path",
           "wal_sync_mode", "CRASH_EXIT_CODE"]

_FRAME = struct.Struct("<II")
_HEADER = struct.Struct("<8sQ")
MAGIC = b"RPWAL001"
HEADER_SIZE = _HEADER.size
#: Sanity bound on one record's payload (a batch of row deltas).
MAX_RECORD = 1 << 30

#: Exit status of an injected crash (mirrors a SIGKILL'd shell's 137).
CRASH_EXIT_CODE = 137

try:
    from zlib import crc32
except ImportError:  # pragma: no cover - zlib is part of CPython
    from binascii import crc32  # type: ignore


class WalError(RuntimeError):
    """Raised on unrecoverable WAL damage (bad magic, impossible frame)."""


def wal_sync_mode(explicit: Optional[str] = None) -> str:
    """Resolve the sync policy: explicit argument, else ``REPRO_WAL_SYNC``.

    ``"always"`` (default) fsyncs every commit; ``"off"`` (aliases:
    ``never``, ``0``, ``no``) does not.
    """
    raw = explicit if explicit is not None else os.environ.get(
        "REPRO_WAL_SYNC", "")
    raw = raw.strip().lower()
    if raw in ("", "always", "1", "yes", "on"):
        return "always"
    if raw in ("off", "never", "0", "no"):
        return "off"
    raise ValueError(
        f"REPRO_WAL_SYNC must be 'always' or 'off', got {raw!r}"
    )


def segment_path(directory: pathlib.Path, base: int) -> pathlib.Path:
    """The WAL segment holding records with LSN > ``base``."""
    return directory / f"wal-{base:016d}.log"


def segment_base(path: pathlib.Path) -> int:
    """The base clock encoded in a segment's file name."""
    return int(path.name[len("wal-"):-len(".log")])


def list_segments(directory: pathlib.Path) -> List[pathlib.Path]:
    """All WAL segments of a store directory, in base-clock order."""
    return sorted(directory.glob("wal-*.log"), key=segment_base)


# ----------------------------------------------------------------------
# crash injection
# ----------------------------------------------------------------------

_crash_budget: Optional[int] = None
_crash_armed = False


def _load_crash_budget() -> Optional[int]:
    """The remaining injected-crash byte budget (None: no injection)."""
    global _crash_budget, _crash_armed
    if not _crash_armed:
        raw = os.environ.get("REPRO_WAL_CRASH_AT", "").strip()
        _crash_budget = int(raw) if raw.isdigit() else None
        _crash_armed = True
    return _crash_budget


def _spend_crash_budget(n: int) -> int:
    """Consume ``n`` bytes of budget; the allowed write may be shorter."""
    global _crash_budget
    if _crash_budget is None:
        return n
    allowed = min(n, _crash_budget)
    _crash_budget -= allowed
    return allowed


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


def scan_wal(path: pathlib.Path) -> Tuple[int, List[Tuple[Any, ...]], int, Optional[str]]:
    """Read one segment, stopping at the first damaged frame.

    Returns ``(base_clock, records, good_offset, damage)`` where
    ``records`` are the decoded payload tuples of every intact record,
    ``good_offset`` is the byte offset just past the last intact record
    (the truncation point for recovery), and ``damage`` is ``None`` for
    a clean segment or a human-readable reason for the torn tail.

    A file too short to hold the header — a crash during segment
    creation, before any record could have been acknowledged — scans as
    empty with ``good_offset`` 0, signalling the writer to rebuild the
    header.
    """
    data = path.read_bytes()
    if len(data) < HEADER_SIZE:
        return segment_base(path), [], 0, (
            "truncated header" if data else None)
    magic, base = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WalError(f"{path.name}: bad magic {magic!r}")
    records: List[Tuple[Any, ...]] = []
    offset = HEADER_SIZE
    last_lsn = -1
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return base, records, offset, "torn frame header"
        length, crc = _FRAME.unpack_from(data, offset)
        if length > MAX_RECORD:
            return base, records, offset, f"implausible length {length}"
        end = offset + _FRAME.size + length
        if end > len(data):
            return base, records, offset, "torn payload"
        payload = data[offset + _FRAME.size:end]
        if crc32(payload) & 0xFFFFFFFF != crc:
            return base, records, offset, "crc mismatch"
        try:
            record = marshal.loads(payload)
        except (ValueError, EOFError, TypeError):
            return base, records, offset, "undecodable payload"
        if (not isinstance(record, tuple) or len(record) < 2
                or record[0] not in ("B", "S")
                or not isinstance(record[1], int)):
            return base, records, offset, "malformed record"
        lsn = record[1]
        if record[0] == "B" and lsn <= last_lsn:
            return base, records, offset, (
                f"non-monotone LSN {lsn} after {last_lsn}")
        last_lsn = max(last_lsn, lsn)
        records.append(record)
        offset = end
    return base, records, offset, None


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------


class WalWriter:
    """Appends framed records to one segment, fsyncing per ``sync``."""

    def __init__(self, path: pathlib.Path, base: int, fp: io.BufferedRandom,
                 size: int, sync: str):
        self.path = path
        self.base = base
        self.sync = sync
        self._fp: Optional[io.BufferedRandom] = fp
        self.size = size

    @classmethod
    def open(cls, directory: pathlib.Path, base: int,
             sync: str = "always") -> Tuple["WalWriter", List[Tuple[Any, ...]]]:
        """Open (creating or recovering) the segment with base ``base``.

        An existing segment is scanned first; a torn tail is truncated
        away so the writer appends after the last intact record.
        Returns the writer and the segment's intact records.
        """
        path = segment_path(directory, base)
        records: List[Tuple[Any, ...]] = []
        if path.exists():
            _, records, good, damage = scan_wal(path)
            fp = open(path, "r+b")
            if damage is not None:
                fp.truncate(good)
                STATS["torn_tails"] += 1
            if good < HEADER_SIZE:
                fp.truncate(0)
                fp.seek(0)
                fp.write(_HEADER.pack(MAGIC, base))
                fp.flush()
                os.fsync(fp.fileno())
                good = HEADER_SIZE
            fp.seek(good)
            return cls(path, base, fp, good, sync), records
        fp = open(path, "x+b")
        writer = cls(path, base, fp, 0, sync)
        writer._write(_HEADER.pack(MAGIC, base))
        writer._flush(force=True)
        return writer, records

    def _write(self, data: bytes) -> None:
        assert self._fp is not None, "writer is closed"
        if _load_crash_budget() is None:
            self._fp.write(data)
            self.size += len(data)
            return
        allowed = _spend_crash_budget(len(data))
        self._fp.write(data[:allowed])
        self.size += allowed
        if allowed < len(data):
            # Injected crash: persist the torn prefix, die without any
            # cleanup (atexit handlers, finally blocks) running.
            self._fp.flush()
            os.fsync(self._fp.fileno())
            os._exit(CRASH_EXIT_CODE)

    def _flush(self, force: bool = False) -> None:
        assert self._fp is not None, "writer is closed"
        self._fp.flush()
        if force or self.sync == "always":
            os.fsync(self._fp.fileno())
            STATS["wal_syncs"] += 1

    def append(self, record: Tuple[Any, ...]) -> int:
        """Frame, append, and (per policy) fsync one record.

        Returns the record's size on disk in bytes.  When this method
        returns under ``sync="always"``, the record is durable.
        """
        payload = marshal.dumps(record)
        frame = _FRAME.pack(len(payload), crc32(payload) & 0xFFFFFFFF)
        self._write(frame + payload)
        self._flush()
        n = len(frame) + len(payload)
        STATS["wal_records"] += 1
        STATS["wal_bytes"] += n
        return n

    @property
    def closed(self) -> bool:
        return self._fp is None

    def close(self) -> None:
        if self._fp is not None:
            self._fp.flush()
            os.fsync(self._fp.fileno())
            self._fp.close()
            self._fp = None
