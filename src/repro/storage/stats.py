"""Process-wide storage counters, surfaced as ``engine.metrics().extra["storage"]``.

One flat counter dict, mirroring the columnar backend's ``_STATS``
pattern: subsystem code increments plain keys, the obs layer snapshots
them through :func:`storage_stats`, and tests reset between cases with
:func:`reset_storage_stats`.  The pushdown router keeps its own nested
section so routing decisions (and the reasons SQL was *not* chosen)
are auditable from one ``--stats`` dump.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["storage_stats", "reset_storage_stats", "STATS"]


def _fresh() -> Dict[str, Any]:
    return {
        # write-ahead log
        "wal_records": 0,        # records appended (batch + schema)
        "wal_bytes": 0,          # payload + frame bytes appended
        "wal_syncs": 0,          # fsync calls on commit
        "commits": 0,            # committed changelog batches logged
        # recovery
        "replays": 0,            # open() recoveries performed
        "replayed_records": 0,   # WAL records applied during recovery
        "replay_ms": 0.0,        # cumulative recovery wall time
        "torn_tails": 0,         # truncated partial tail records
        # snapshots / checkpoints
        "checkpoints": 0,
        "snapshot_bytes": 0,     # bytes of the most recent snapshot
        "snapshot_ms": 0.0,      # cumulative snapshot wall time
        "wal_pruned": 0,         # WAL segment files deleted
        # SQL pushdown routing + native execution
        "pushdown": {
            "routed_sql": 0,           # queries served by the mirror
            "native_sql": 0,           # of those, plan-IR→SQL native runs
            "legacy_sql": 0,           # formula-SQL fallback executions
            "fallback_unsupported": 0,  # plan has no SQL translation (QP110)
            "fallback_small": 0,       # below REPRO_SQL_MIN_FACTS
            "mirror_rebuilds": 0,      # full reloads of the sqlite mirror
            "mirror_delta_rows": 0,    # fact rows applied incrementally
            "adom_delta_rows": 0,      # active-domain refcount upserts
            "stmt_cache_hits": 0,      # compiled statements reused
            "stmt_cache_misses": 0,    # compiled statements built
        },
    }


STATS: Dict[str, Any] = _fresh()


def storage_stats() -> Dict[str, Any]:
    """A snapshot of the storage counters (the metrics source)."""
    out = dict(STATS)
    out["pushdown"] = dict(STATS["pushdown"])
    return out


def reset_storage_stats() -> None:
    """Zero every counter (test isolation)."""
    STATS.clear()
    STATS.update(_fresh())
