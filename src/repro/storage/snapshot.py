"""Atomic snapshots: the database's relations as int-column images.

A snapshot is one self-contained file from which recovery can rebuild
the whole fact store without replaying history.  The encoding reuses
the fork-pool's wire forms (:mod:`repro.parallel.pool`): a snapshot-
local :class:`~repro.columnar.dictionary.ValueDictionary` assigns dense
codes to every domain value, each relation is stored as
``("C", n_rows, arity, [array('q') column bytes])`` — near-memcpy on
both ends — and the whole document goes through ``marshal`` (``b"M"``
prefix) with a transparent pickle fallback (``b"P"``) for exotic value
types, exactly like the pool's row shipping.

File layout (integers little-endian)::

    +----------+----------+----------+------------------+
    | magic    | crc32    | length   | payload          |
    | 8 bytes  | 4 bytes  | 8 bytes  | `length` bytes   |
    +----------+----------+----------+------------------+

Writes are atomic: the payload is written to a ``.tmp`` sibling,
flushed and fsynced, then ``os.rename``\\ d over the final
``snapshot-<clock>.snap`` name and the directory fsynced — a crash
leaves either the old snapshot set or the new one, never a half
snapshot under the final name.  Readers verify the CRC before trusting
anything, so a corrupt file is rejected (and recovery falls back to an
older snapshot plus a longer WAL replay).

Crash injection for the chaos suite: ``REPRO_SNAPSHOT_CRASH_AT`` may be
a byte count (die mid-``.tmp``-write after that many bytes) or the
sentinels ``before-rename`` / ``after-rename``.
"""

from __future__ import annotations

import marshal
import os
import pathlib
import pickle
import struct
from array import array
from typing import Dict, List, Optional, Set, Tuple

from ..columnar.dictionary import ValueDictionary
from ..core.atoms import RelationSchema
from .wal import CRASH_EXIT_CODE

try:
    from zlib import crc32
except ImportError:  # pragma: no cover - zlib is part of CPython
    from binascii import crc32  # type: ignore

__all__ = ["SnapshotError", "write_snapshot", "read_snapshot",
           "snapshot_path", "list_snapshots"]

MAGIC = b"RPSNAP01"
_HEADER = struct.Struct("<8sIQ")

Row = Tuple


class SnapshotError(RuntimeError):
    """Raised when a snapshot file cannot be trusted."""


def snapshot_path(directory: pathlib.Path, clock: int) -> pathlib.Path:
    return directory / f"snapshot-{clock:016d}.snap"


def snapshot_clock(path: pathlib.Path) -> int:
    return int(path.name[len("snapshot-"):-len(".snap")])


def list_snapshots(directory: pathlib.Path) -> List[pathlib.Path]:
    """All snapshot files of a store directory, oldest first."""
    return sorted(directory.glob("snapshot-*.snap"), key=snapshot_clock)


def _encode_relation(rows: Set[Row], arity: int,
                     dictionary: ValueDictionary) -> Tuple:
    """One relation in the pool's int-column wire form."""
    ordered = list(rows)
    encode = dictionary.encode
    columns = [
        array("q", [encode(row[j]) for row in ordered])
        for j in range(arity)
    ]
    return ("C", len(ordered), arity, [col.tobytes() for col in columns])


def _decode_relation(entry: Tuple, values: List[object]) -> Set[Row]:
    tag = entry[0]
    if tag == "V":
        return {tuple(row) for row in entry[1]}
    if tag != "C":
        raise SnapshotError(f"unknown relation encoding {tag!r}")
    _, n, arity, blobs = entry
    if n == 0:
        return set()
    if arity == 0:
        return {()}
    decoded = []
    for blob in blobs:
        col = array("q")
        col.frombytes(blob)
        if len(col) != n:
            raise SnapshotError("column length disagrees with row count")
        decoded.append(map(values.__getitem__, col))
    return set(zip(*decoded))


def _encode_payload(document: dict) -> bytes:
    try:
        return b"M" + marshal.dumps(document)
    except ValueError:
        return b"P" + pickle.dumps(document)


def _decode_payload(blob: bytes) -> dict:
    if blob[:1] == b"M":
        return marshal.loads(blob[1:])
    if blob[:1] == b"P":
        return pickle.loads(blob[1:])
    raise SnapshotError(f"unknown payload prefix {blob[:1]!r}")


def _crash_mode() -> Optional[str]:
    raw = os.environ.get("REPRO_SNAPSHOT_CRASH_AT", "").strip()
    return raw or None


def _crash_now() -> None:
    os._exit(CRASH_EXIT_CODE)


def write_snapshot(directory: pathlib.Path, clock: int,
                   schemas: Dict[str, RelationSchema],
                   facts: Dict[str, Set[Row]]) -> int:
    """Atomically write ``snapshot-<clock>.snap``; returns bytes on disk.

    The value dictionary is built fresh per snapshot (dense codes over
    exactly the values alive at ``clock``), so deleted values never
    leak into the on-disk image — the durable cousin of the columnar
    store's fresh-store-per-database rule.
    """
    dictionary = ValueDictionary()
    relations = {
        name: _encode_relation(facts.get(name, set()),
                               schemas[name].arity, dictionary)
        for name in sorted(schemas)
    }
    document = {
        "clock": clock,
        "schemas": [(s.name, s.arity, s.key_size)
                    for _, s in sorted(schemas.items())],
        "dictionary": list(dictionary.values),
        "relations": relations,
    }
    payload = _encode_payload(document)
    header = _HEADER.pack(MAGIC, crc32(payload) & 0xFFFFFFFF, len(payload))
    tmp = directory / f"snapshot-{clock:016d}.tmp"
    final = snapshot_path(directory, clock)
    crash = _crash_mode()
    with open(tmp, "wb") as fp:
        data = header + payload
        if crash is not None and crash.isdigit():
            cut = min(int(crash), len(data))
            fp.write(data[:cut])
            fp.flush()
            os.fsync(fp.fileno())
            _crash_now()
        fp.write(data)
        fp.flush()
        os.fsync(fp.fileno())
    if crash == "before-rename":
        _crash_now()
    os.rename(tmp, final)
    _fsync_directory(directory)
    if crash == "after-rename":
        _crash_now()
    return len(header) + len(payload)


def _fsync_directory(directory: pathlib.Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_snapshot(path: pathlib.Path) -> Tuple[int, List[RelationSchema],
                                               Dict[str, Set[Row]]]:
    """Decode one snapshot, raising :class:`SnapshotError` on damage."""
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise SnapshotError(f"{path.name}: truncated header")
    magic, crc, length = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise SnapshotError(f"{path.name}: bad magic {magic!r}")
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise SnapshotError(
            f"{path.name}: payload is {len(payload)} bytes, header "
            f"promises {length}")
    if crc32(payload) & 0xFFFFFFFF != crc:
        raise SnapshotError(f"{path.name}: crc mismatch")
    try:
        document = _decode_payload(payload)
    except (ValueError, EOFError, TypeError) as exc:
        raise SnapshotError(f"{path.name}: undecodable payload: {exc}")
    values = list(document["dictionary"])
    schemas = [RelationSchema(name, arity, key)
               for name, arity, key in document["schemas"]]
    facts = {
        name: _decode_relation(entry, values)
        for name, entry in document["relations"].items()
    }
    return int(document["clock"]), schemas, facts
