"""Durable storage for the CQA engine (PR 8).

A :class:`PersistentDatabase` is a drop-in :class:`repro.db.Database`
whose committed state survives the process: every changelog batch is
written ahead to a CRC-framed, fsynced WAL (:mod:`repro.storage.wal`),
checkpoints compact the log into atomic snapshots
(:mod:`repro.storage.snapshot`), recovery replays the consistent prefix
(:mod:`repro.storage.store`), and ``method="sql"`` pushes compiled
first-order rewritings down to a delta-maintained sqlite mirror
(:mod:`repro.storage.pushdown`).  :mod:`repro.storage.chaos` is the
kill-9 harness that keeps the durability claim honest.

See ``docs/STORAGE.md`` for the file formats and recovery protocol.
"""

from .chaos import run_chaos
from .pushdown import (
    DEFAULT_SQL_MIN_FACTS,
    DEFAULT_SQL_STMT_CACHE,
    SQLiteMirror,
    mirror_capable,
    native_sql_answers,
    native_sql_holds,
    prefer_sql,
    sql_mirror,
    sql_min_facts,
    sql_stmt_cache_size,
)
from .sqlgen import CompiledSQL, compile_plan, supports_plan
from .snapshot import SnapshotError, list_snapshots, read_snapshot, write_snapshot
from .stats import reset_storage_stats, storage_stats
from .store import (
    DEFAULT_CHECKPOINT_BYTES,
    PersistentDatabase,
    StorageError,
    checkpoint_threshold_bytes,
    open_database,
    query_from_dict,
    query_to_dict,
    verify_store,
)
from .wal import WalError, WalWriter, list_segments, scan_wal, wal_sync_mode

__all__ = [
    "PersistentDatabase",
    "StorageError",
    "open_database",
    "verify_store",
    "query_to_dict",
    "query_from_dict",
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "list_snapshots",
    "WalError",
    "WalWriter",
    "scan_wal",
    "list_segments",
    "wal_sync_mode",
    "SQLiteMirror",
    "sql_mirror",
    "mirror_capable",
    "native_sql_answers",
    "native_sql_holds",
    "prefer_sql",
    "sql_min_facts",
    "sql_stmt_cache_size",
    "DEFAULT_SQL_MIN_FACTS",
    "DEFAULT_SQL_STMT_CACHE",
    "CompiledSQL",
    "compile_plan",
    "supports_plan",
    "checkpoint_threshold_bytes",
    "DEFAULT_CHECKPOINT_BYTES",
    "storage_stats",
    "reset_storage_stats",
    "run_chaos",
]
