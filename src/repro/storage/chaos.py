"""Crash-injection chaos harness for the durable store.

The durability claim under test (ISSUE 8): **kill -9 during a committed
batch never loses it and never exposes a partial one.**  The harness
makes that claim falsifiable the way the lab-transactions ledger
scripts do — by actually killing processes — but deterministically:

1. The *worker* (``python -m repro.storage.chaos worker <dir> <seed>
   <ops>``) opens a :class:`~repro.storage.store.PersistentDatabase`
   and runs a pseudo-random update stream derived from ``seed`` (adds,
   discards, batches, ``discard_all`` sweeps, checkpoints).  After
   every committed changelog it prints ``ACK <lsn>`` — *after*
   :meth:`WalWriter.append` returned, i.e. after the fsync — so every
   acknowledged LSN is a durability promise.
2. The parent arms ``REPRO_WAL_CRASH_AT=<n>`` (the write that would
   exceed an *n*-byte budget is cut at the byte boundary, flushed, and
   the process ``os._exit``\\ s) or ``REPRO_SNAPSHOT_CRASH_AT`` (die
   mid-snapshot, before or after the atomic rename), so each trial
   tears the store at one precise, randomized byte.
3. Recovery is then checked against an *oracle*: the same seeded
   stream applied to a plain in-memory :class:`Database` whose
   changelog listener records a sha256 state digest at every clock
   value.  The recovered store must sit at some clock of that history
   — at least the highest acknowledged LSN — with a byte-identical
   digest.  Any lost committed batch, partially applied batch, or
   replayed garbage changes the digest and fails the trial.

``run_chaos`` drives N trials (fresh store directory each) and returns
a summary dict; ``tests/test_storage_chaos.py`` runs a quick slice,
the CI ``storage-durability`` job runs the full 200+.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import random
import subprocess
import sys
from typing import Callable, Dict, List, Optional, Tuple

from ..core.atoms import RelationSchema
from ..db.database import Database

__all__ = ["build_ops", "apply_ops", "state_digest", "expected_digests",
           "run_trial", "run_chaos", "ChaosFailure"]

#: The worker's schema: small key domains force key conflicts, so the
#: stream exercises genuinely inconsistent (multi-repair) states.
RELATIONS: Tuple[Tuple[str, int, int], ...] = (
    ("R", 2, 1), ("S", 2, 1), ("T", 1, 1),
)


class ChaosFailure(AssertionError):
    """A durability violation found by the harness."""


def build_ops(seed: int, n: int) -> List[Tuple]:
    """The deterministic update stream for ``seed`` (shared by the
    worker and the oracle)."""
    rng = random.Random(seed)
    names = [name for name, _, _ in RELATIONS]

    def row(arity: int) -> Tuple:
        return tuple(
            rng.randrange(8) if i == 0 else rng.randrange(20)
            for i in range(arity)
        )

    def pick() -> Tuple[str, int]:
        name, arity, _ = RELATIONS[rng.randrange(len(names))]
        return name, arity

    ops: List[Tuple] = []
    for _ in range(n):
        r = rng.random()
        name, arity = pick()
        if r < 0.50:
            ops.append(("add", name, row(arity)))
        elif r < 0.68:
            ops.append(("discard", name, row(arity)))
        elif r < 0.86:
            steps = [
                (("add" if rng.random() < 0.7 else "discard"),
                 *((lambda nm, ar: (nm, row(ar)))(*pick())))
                for _ in range(rng.randrange(2, 7))
            ]
            ops.append(("batch", steps))
        elif r < 0.96:
            ops.append(("discard_all", name,
                        [row(arity) for _ in range(rng.randrange(1, 5))]))
        else:
            ops.append(("checkpoint",))
    return ops


def apply_ops(db: Database, ops: List[Tuple],
              ack: Optional[Callable[[int], None]] = None) -> None:
    """Run the stream on any Database; checkpoints only where supported.

    ``ack`` fires once per *published changelog* (a batch whose
    mutations cancel out bumps the clock but emits none — there is
    nothing durable to acknowledge for it).  On a persistent store the
    ack listener sits after the WAL listener in subscription order, so
    by the time it fires the batch's record is already fsynced.
    """
    for name, arity, key in RELATIONS:
        if name not in db.schemas:
            db.add_relation(RelationSchema(name, arity, key))
    listener: Optional[Callable] = None
    if ack is not None:
        def listener(log):  # noqa: F811 - deliberate rebind
            ack(log.version)
        db.subscribe(listener)
    try:
        for op in ops:
            if op[0] == "add":
                db.add(op[1], op[2])
            elif op[0] == "discard":
                db.discard(op[1], op[2])
            elif op[0] == "discard_all":
                db.discard_all(op[1], op[2])
            elif op[0] == "batch":
                with db.batch():
                    for kind, name, row in op[1]:
                        (db.add if kind == "add" else db.discard)(name, row)
            elif op[0] == "checkpoint":
                checkpoint = getattr(db, "checkpoint", None)
                if checkpoint is not None:
                    checkpoint()
    finally:
        if listener is not None:
            db.unsubscribe(listener)


def state_digest(db: Database) -> str:
    """sha256 over the sorted facts of every non-empty relation.

    Relations without facts are excluded so the digest depends only on
    *data*, not on which schema registrations a crash let through.
    """
    h = hashlib.sha256()
    for name in sorted(db.schemas):
        rows = db.facts(name)
        if not rows:
            continue
        h.update(name.encode())
        for row in sorted(rows, key=repr):
            h.update(repr(row).encode())
    return h.hexdigest()


def expected_digests(seed: int, n: int) -> Dict[int, str]:
    """The oracle: clock -> state digest over the whole seeded history.

    Digests are recorded at every published changelog *and* after every
    op: a cancelled batch advances the clock without a changelog, and a
    checkpoint taken right after one persists that clock — recovery
    must still land on a digest-identical state.
    """
    db = Database()
    digests: Dict[int, str] = {}
    db.subscribe(lambda log: digests.__setitem__(log.version,
                                                 state_digest(db)))
    digests[0] = state_digest(db)
    for op in build_ops(seed, n):
        apply_ops(db, [op])
        digests[db.clock] = state_digest(db)
    return digests


# ----------------------------------------------------------------------
# driving
# ----------------------------------------------------------------------


def _worker_main(argv: List[str]) -> None:
    from .store import PersistentDatabase

    directory, seed, n = argv[0], int(argv[1]), int(argv[2])
    db = PersistentDatabase(directory)
    print(f"CLOCK {db.clock}", flush=True)
    apply_ops(db, build_ops(seed, n),
              ack=lambda lsn: print(f"ACK {lsn}", flush=True))
    print(f"DONE {db.clock} {state_digest(db)}", flush=True)
    db.close()


def _worker_env(crash_env: Dict[str, str]) -> Dict[str, str]:
    env = dict(os.environ)
    env.pop("REPRO_WAL_CRASH_AT", None)
    env.pop("REPRO_SNAPSHOT_CRASH_AT", None)
    src = str(pathlib.Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.update(crash_env)
    return env


def run_trial(store: pathlib.Path, seed: int, ops: int,
              crash_env: Dict[str, str],
              oracle: Optional[Dict[int, str]] = None) -> Dict[str, object]:
    """One kill-and-recover round on a fresh store directory.

    Returns trial facts (crashed?, acked LSNs, recovered clock);
    raises :class:`ChaosFailure` on any durability violation.
    """
    from .store import PersistentDatabase
    from .wal import CRASH_EXIT_CODE

    proc = subprocess.run(
        [sys.executable, "-m", "repro.storage.chaos", "worker",
         str(store), str(seed), str(ops)],
        capture_output=True, text=True, env=_worker_env(crash_env),
        timeout=120,
    )
    if proc.returncode not in (0, CRASH_EXIT_CODE):
        raise ChaosFailure(
            f"worker died unexpectedly (rc={proc.returncode}):\n"
            f"{proc.stderr[-2000:]}")
    acked = [int(line.split()[1]) for line in proc.stdout.splitlines()
             if line.startswith("ACK ")]
    crashed = proc.returncode == CRASH_EXIT_CODE
    if oracle is None:
        oracle = expected_digests(seed, ops)
    db = PersistentDatabase(store)
    try:
        recovered = db.clock
        digest = state_digest(db)
    finally:
        db.close()
    max_ack = max(acked, default=0)
    if recovered < max_ack:
        raise ChaosFailure(
            f"lost a committed batch: acked LSN {max_ack}, recovered "
            f"clock {recovered} (crash_env={crash_env})")
    if recovered not in oracle:
        raise ChaosFailure(
            f"recovered clock {recovered} is not a state of the seeded "
            f"history (crash_env={crash_env})")
    if digest != oracle[recovered]:
        raise ChaosFailure(
            f"state at recovered clock {recovered} diverges from the "
            f"oracle digest (partial batch visible? crash_env="
            f"{crash_env})")
    return {"crashed": crashed, "acked": len(acked),
            "max_ack": max_ack, "recovered_clock": recovered}


def run_chaos(base_dir: pathlib.Path, trials: int = 200, seed: int = 0,
              ops: int = 120,
              progress: Optional[Callable[[int, Dict], None]] = None
              ) -> Dict[str, object]:
    """``trials`` randomized kill-9 rounds; returns a summary dict.

    Roughly 75% of trials tear the WAL at a random byte budget
    (mid-commit), the rest crash inside a checkpoint (mid-``.tmp``,
    before or after the atomic rename).  Each trial seeds its own
    stream, so crash points land everywhere in the history.
    """
    rng = random.Random(seed)
    base_dir = pathlib.Path(base_dir)
    summary = {"trials": 0, "crashes": 0, "clean_exits": 0,
               "wal_trials": 0, "snapshot_trials": 0, "acked_total": 0}
    oracles: Dict[int, Dict[int, str]] = {}
    for i in range(trials):
        stream_seed = rng.randrange(64)
        if stream_seed not in oracles:
            oracles[stream_seed] = expected_digests(stream_seed, ops)
        if rng.random() < 0.75:
            crash_env = {"REPRO_WAL_CRASH_AT": str(rng.randrange(16, 6000))}
            summary["wal_trials"] += 1
        else:
            mode = rng.choice(["before-rename", "after-rename",
                               str(rng.randrange(8, 2000))])
            crash_env = {"REPRO_SNAPSHOT_CRASH_AT": mode}
            summary["snapshot_trials"] += 1
        result = run_trial(base_dir / f"trial-{i:04d}", stream_seed, ops,
                           crash_env, oracle=oracles[stream_seed])
        summary["trials"] += 1
        summary["crashes" if result["crashed"] else "clean_exits"] += 1
        summary["acked_total"] += result["acked"]
        if progress is not None:
            progress(i, result)
    return summary


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    if len(sys.argv) >= 2 and sys.argv[1] == "worker":
        _worker_main(sys.argv[2:])
    else:
        print("usage: python -m repro.storage.chaos worker <dir> <seed> <n>",
              file=sys.stderr)
        sys.exit(2)
