"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments without the ``wheel`` package (pip falls back to
the legacy ``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Consistent query answering for primary keys and conjunctive "
        "queries with negated atoms (Koutris & Wijsen, PODS 2018): "
        "attack graphs, the FO dichotomy, consistent first-order "
        "rewritings, SQL compilation, and the hardness reductions."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
