"""Plan compiler vs tuple-at-a-time interpretation.

The regression grid behind BENCH_plan.json: Boolean certainty and
certain answers, interpreter vs compiled plan, at increasing database
sizes.  Every benchmark asserts agreement with the rewriting path
before timing, so a speedup can never hide a wrong answer.

Boolean certainty additionally asserts an *ordering*: the executor's
short-circuit probe mode (``Executor.nonempty``) must keep the
compiled plan at least as fast as the tuple-at-a-time evaluator.
This grid is where the compiled path used to regress to ~0.5x by
materializing full witness relations only to test emptiness.
"""

import random
import time

import pytest

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.fo.compile import plan_cache
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa

SIZES = [(60, 12), (150, 25)]


def _db(people, towns, seed=71):
    return random_poll_database(people, towns, conflict_rate=0.5,
                                rng=random.Random(seed))


@pytest.fixture(scope="module")
def engine():
    return CertaintyEngine(poll_qa())


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("method", ["rewriting", "compiled"])
def test_boolean_certainty(benchmark, engine, size, method):
    db = _db(*size)
    expected = engine.certain(db, "rewriting")
    result = benchmark(engine.certain, db, method)
    assert result == expected


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("method", ["rewriting", "compiled"])
def test_certain_answers(benchmark, size, method):
    open_query = OpenQuery(poll_qa(), [Variable("p")])
    db = _db(*size)
    expected = certain_answers(open_query, db, "rewriting")
    result = benchmark(certain_answers, open_query, db, method)
    assert result == expected


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_boolean_compiled_not_slower_than_rewriting(engine, size):
    """The short-circuit regression guard on the boolean_certainty grid.

    Min-of-5 in one process for both methods; the compiled probe
    evaluator wins by several x on this grid, so the bare <= bound has
    ample noise margin.
    """
    db = _db(*size)
    engine.certain(db, "compiled")  # warm plan cache and indexes
    engine.certain(db, "rewriting")

    def best_of(method, repeat=5):
        best = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            engine.certain(db, method)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return best

    t_compiled = best_of("compiled")
    t_rewriting = best_of("rewriting")
    assert t_compiled <= t_rewriting, (
        f"compiled boolean regressed: {t_compiled:.4f}s vs "
        f"rewriting {t_rewriting:.4f}s at {size}"
    )


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_tracing_parity_on_bench_grid(engine, size):
    """Tracing must be a pure observer on the benchmark workload:
    identical Boolean answers and identical answer sets, with the
    traced run actually producing spans and an operator profile."""
    from repro.obs import Tracer

    db = _db(*size)
    open_query = OpenQuery(poll_qa(), [Variable("p")])

    tracer = Tracer()
    assert engine.certain(db, "compiled", tracer=tracer) == \
        engine.certain(db, "compiled")
    assert tracer.roots and tracer.profiles

    tracer = Tracer()
    traced = certain_answers(open_query, db, "compiled", tracer=tracer)
    assert traced == certain_answers(open_query, db, "compiled")
    assert tracer.roots and tracer.profiles


def test_plan_cache_hits_across_runs(engine):
    db = _db(30, 8)
    engine.certain(db, "compiled")
    before = plan_cache.stats()["hits"]
    engine.certain(db, "compiled")
    assert plan_cache.stats()["hits"] == before + 1
