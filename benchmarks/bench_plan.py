"""Plan compiler vs tuple-at-a-time interpretation.

The regression grid behind BENCH_plan.json: Boolean certainty and
certain answers, interpreter vs compiled plan, at increasing database
sizes.  Every benchmark asserts agreement with the rewriting path
before timing, so a speedup can never hide a wrong answer.
"""

import random

import pytest

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.cqa.engine import CertaintyEngine
from repro.fo.compile import plan_cache
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa

SIZES = [(60, 12), (150, 25)]


def _db(people, towns, seed=71):
    return random_poll_database(people, towns, conflict_rate=0.5,
                                rng=random.Random(seed))


@pytest.fixture(scope="module")
def engine():
    return CertaintyEngine(poll_qa())


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("method", ["rewriting", "compiled"])
def test_boolean_certainty(benchmark, engine, size, method):
    db = _db(*size)
    expected = engine.certain(db, "rewriting")
    result = benchmark(engine.certain, db, method)
    assert result == expected


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("method", ["rewriting", "compiled"])
def test_certain_answers(benchmark, size, method):
    open_query = OpenQuery(poll_qa(), [Variable("p")])
    db = _db(*size)
    expected = certain_answers(open_query, db, "rewriting")
    result = benchmark(certain_answers, open_query, db, method)
    assert result == expected


def test_plan_cache_hits_across_runs(engine):
    db = _db(30, 8)
    engine.certain(db, "compiled")
    before = plan_cache.stats()["hits"]
    engine.certain(db, "compiled")
    assert plan_cache.stats()["hits"] == before + 1
