"""Incremental view maintenance vs full recompute per committed batch.

The regression grid behind BENCH_incremental.json at CI-friendly
sizes.  Every benchmark replays the same pre-materialized update
stream, and correctness is asserted against a batch-by-batch compiled
recompute before anything is timed — a speedup can never hide a wrong
answer (the same discipline as bench_plan.py).
"""

import random

import pytest

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.incremental import ViewManager
from repro.workloads.generators import (
    UpdateStreamParams,
    apply_update_stream,
    random_update_stream,
)
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa

SIZES = [(60, 12), (150, 25)]
STREAM = UpdateStreamParams(n_batches=10, batch_size=5, delete_fraction=0.5,
                            churn=0.6)


def _workload(people, towns, seed=71):
    db = random_poll_database(people, towns, conflict_rate=0.5,
                              rng=random.Random(seed))
    batches = random_update_stream(db, STREAM, random.Random(2018))
    return db, batches


def _maintain(db, batches):
    db = db.copy()
    view = ViewManager(db).register_view(poll_qa(), [Variable("p")])
    for batch in batches:
        with db.batch():
            for insert, relation, row in batch:
                (db.add if insert else db.discard)(relation, row)
    return view.answers


def _recompute(db, batches):
    db = db.copy()
    open_query = OpenQuery(poll_qa(), [Variable("p")])
    answers = None
    for batch in batches:
        with db.batch():
            for insert, relation, row in batch:
                (db.add if insert else db.discard)(relation, row)
        answers = certain_answers(open_query, db, "compiled")
    return answers


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("strategy", [_maintain, _recompute],
                         ids=["incremental", "recompute"])
def test_update_stream(benchmark, size, strategy):
    db, batches = _workload(*size)
    expected = _recompute(db, batches)
    result = benchmark(strategy, db, batches)
    assert result == expected


def test_view_agrees_with_recompute_after_every_batch():
    db, batches = _workload(100, 20)
    maintained = db.copy()
    view = ViewManager(maintained).register_view(poll_qa(), [Variable("p")])
    open_query = OpenQuery(poll_qa(), [Variable("p")])
    for batch in batches:
        apply_update_stream(maintained, [batch])
        assert view.answers == certain_answers(open_query, maintained,
                                               "compiled")
    assert view.stats()["fallback_recomputes"] == 0
