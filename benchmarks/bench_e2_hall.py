"""E2 — Figure 2 / Examples 1.2, 6.12: q_Hall.

Shape claims: rewriting size grows exponentially in ell; all solvers
agree; the Hall matching solver stays polynomial.
"""

import random

import pytest

from repro.cqa.engine import CertaintyEngine
from repro.cqa.rewriting import consistent_rewriting
from repro.fo.stats import stats
from repro.matching.hall import SCoveringInstance
from repro.reductions.scovering import query_for, scovering_to_database
from repro.workloads.queries import q_hall


def _instance(n, ell, seed=0):
    rng = random.Random(seed)
    elements = list(range(n))
    subsets = [[e for e in elements if rng.random() < 0.5] for _ in range(ell)]
    return SCoveringInstance(elements, subsets)


@pytest.mark.parametrize("ell", [1, 2, 3, 4])
def test_rewriting_construction(benchmark, ell):
    formula = benchmark(consistent_rewriting, q_hall(ell))
    assert stats(formula).nodes > 0


def test_rewriting_size_exponential():
    sizes = [stats(consistent_rewriting(q_hall(ell))).nodes for ell in (1, 2, 3, 4)]
    for a, b in zip(sizes, sizes[1:]):
        assert b > 2 * a, f"expected exponential growth, got {sizes}"


@pytest.mark.parametrize("ell", [1, 2, 3])
def test_sql_evaluation(benchmark, ell):
    inst = _instance(30, ell)
    db = scovering_to_database(inst)
    engine = CertaintyEngine(query_for(inst))
    result = benchmark(engine.certain, db, "sql")
    assert result == (not inst.solvable)


def test_hall_solver(benchmark):
    inst = _instance(200, 4)
    result = benchmark(lambda: inst.solvable)
    assert isinstance(result, bool)


def test_all_solvers_agree():
    inst = _instance(4, 2, seed=7)
    db = scovering_to_database(inst)
    engine = CertaintyEngine(query_for(inst))
    cv = engine.cross_validate(db)
    assert cv.consistent
    assert cv.answer == (not inst.solvable)
