"""Shared fixtures for the benchmark suite.

Run with:  pytest benchmarks/ --benchmark-only

Each module corresponds to one experiment id of DESIGN.md (E1–E11) and
both (a) times the representative operation with pytest-benchmark and
(b) re-asserts the paper-shape claims (who wins, agreement, growth).
"""

import random

import pytest


@pytest.fixture
def rng():
    return random.Random(2018)
