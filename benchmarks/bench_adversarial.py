"""Worst-case workloads: Hall-critical coverings, long augmenting
paths, maximal-repair-count databases.

Shape claims: the polynomial substrates stay polynomial on their worst
cases; the repair-count bound is attained exactly.
"""

import pytest

from repro.cqa.brute_force import is_certain_brute_force
from repro.cqa.engine import CertaintyEngine
from repro.matching.hopcroft_karp import maximum_matching
from repro.reductions.scovering import query_for, scovering_to_database
from repro.workloads.adversarial import (
    hall_critical_instance,
    long_augmenting_path_graph,
    max_repair_database,
    repair_count_upper_bound,
)


@pytest.mark.parametrize("m", [16, 64, 256])
def test_hopcroft_karp_on_augmenting_chains(benchmark, m):
    graph = long_augmenting_path_graph(m)
    matching = benchmark(maximum_matching, graph)
    assert len(matching) == m


@pytest.mark.parametrize("n", [2, 3])
def test_hall_critical_certainty(benchmark, n):
    """Tight instances: CERTAINTY(q_Hall) is false but only just."""
    inst = hall_critical_instance(n)
    db = scovering_to_database(inst)
    engine = CertaintyEngine(query_for(inst))
    result = benchmark(engine.certain, db, "rewriting")
    assert result is False  # the staircase is solvable
    assert result == is_certain_brute_force(query_for(inst), db)


def test_hall_critical_flips_when_broken():
    inst = hall_critical_instance(3)
    db = scovering_to_database(inst)
    query = query_for(inst)
    assert not is_certain_brute_force(query, db)
    # Delete e1's only early membership: now uncoverable -> certain.
    db.discard("N1", ("c", "e1"))
    assert is_certain_brute_force(query, db)


@pytest.mark.parametrize("budget", [9, 15])
def test_brute_force_on_max_repair_db(benchmark, budget):
    """Brute force against the densest possible repair space."""
    from repro.core.parser import parse_query

    db = max_repair_database(budget)
    assert db.repair_count() == repair_count_upper_bound(budget)
    query = parse_query("R(x | y), not Z(x | y)")
    result = benchmark(is_certain_brute_force, query, db)
    assert result is True  # Z is empty: q holds wherever R has a block
