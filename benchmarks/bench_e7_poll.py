"""E7 — Example 4.6: answering the poll queries.

Shape claims: the classification matches the paper; for the acyclic
queries all FO strategies agree and beat brute force on inconsistent
databases of nontrivial block structure.
"""

import pytest

from repro.core.classify import Verdict, classify
from repro.cqa.engine import CertaintyEngine
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_q1, poll_q2, poll_qa, poll_qb


@pytest.fixture(scope="module")
def poll_db():
    import random

    return random_poll_database(40, 10, conflict_rate=0.5,
                                rng=random.Random(2018))


def test_classification_matches_paper():
    assert classify(poll_q1()).verdict is Verdict.NOT_IN_FO
    assert classify(poll_q2()).verdict is Verdict.NOT_IN_FO
    assert classify(poll_qa()).verdict is Verdict.IN_FO
    assert classify(poll_qb()).verdict is Verdict.IN_FO


@pytest.mark.parametrize("method", ["rewriting", "sql", "interpreted"])
def test_qa_strategies(benchmark, poll_db, method):
    engine = CertaintyEngine(poll_qa())
    expected = engine.certain(poll_db, "rewriting")
    result = benchmark(engine.certain, poll_db, method)
    assert result == expected


@pytest.mark.parametrize("method", ["rewriting", "sql"])
def test_qb_strategies(benchmark, poll_db, method):
    engine = CertaintyEngine(poll_qb())
    expected = engine.certain(poll_db, "rewriting")
    result = benchmark(engine.certain, poll_db, method)
    assert result == expected


def test_brute_force_small(benchmark, rng):
    db = random_poll_database(8, 3, conflict_rate=0.5, rng=rng)
    engine = CertaintyEngine(poll_qa())
    result = benchmark(engine.certain, db, "brute")
    assert result == engine.certain(db, "rewriting")


def test_shape_fo_beats_brute(rng):
    from repro.experiments.harness import timed

    db = random_poll_database(14, 4, conflict_rate=0.8, rng=rng)
    engine = CertaintyEngine(poll_qa())
    answer_rw, t_rw = timed(engine.certain, db, "rewriting", repeat=3)
    answer_bf, t_bf = timed(engine.certain, db, "brute")
    assert answer_rw == answer_bf
    assert t_rw < t_bf
