"""E4 — Figure 4 / Lemma 5.3: UFA vs CERTAINTY(q2).

Shape claims: union-find answers in ~constant time while brute force on
the reduced database grows as 4^edges; answers always match.
"""

import pytest

from repro.cqa.brute_force import is_certain_brute_force
from repro.reductions.ufa import ufa_to_database
from repro.workloads.forests import ufa_instance
from repro.workloads.queries import q2


@pytest.mark.parametrize("size", [10, 100, 1000])
def test_union_find_scales(benchmark, rng, size):
    forest, u, v = ufa_instance(size, max(2, size // 2), connected=True,
                                rng=rng)
    result = benchmark(forest.connected, u, v)
    assert result is True


def test_brute_force_on_reduction_small(benchmark, rng):
    forest, u, v = ufa_instance(3, 2, connected=True, rng=rng)
    db = ufa_to_database(forest, u, v)
    result = benchmark(is_certain_brute_force, q2(), db)
    assert result is True


def test_equivalence_both_answers(rng):
    for connected in (True, False):
        forest, u, v = ufa_instance(3, 3, connected=connected, rng=rng)
        db = ufa_to_database(forest, u, v)
        assert is_certain_brute_force(q2(), db) == connected


def test_shape_exponential_vs_flat(rng):
    from repro.experiments.harness import timed

    forest4, u4, v4 = ufa_instance(4, 2, connected=True, rng=rng)
    forest6, u6, v6 = ufa_instance(6, 2, connected=True, rng=rng)
    _, t4 = timed(is_certain_brute_force, q2(), ufa_to_database(forest4, u4, v4))
    _, t6 = timed(is_certain_brute_force, q2(), ufa_to_database(forest6, u6, v6))
    _, t_uf = timed(forest6.connected, u6, v6, repeat=3)
    assert t6 > t4  # growing with the repair count
    assert t_uf < t6  # union-find wins
