"""E5 — Examples 4.1/4.2: attack graph construction.

Shape claims: edge sets match the paper exactly; construction is cheap.
"""

import pytest

from repro.core.attack_graph import AttackGraph
from repro.workloads.queries import (
    all_named_queries,
    q2_example41,
    q3,
    q_hall,
)


def test_attack_graph_example41(benchmark):
    graph = benchmark(AttackGraph, q2_example41())
    assert sorted((f.relation, g.relation) for f, g in graph.edges) == [
        ("R", "P"), ("R", "S"), ("S", "P"), ("S", "R")]


def test_attack_graph_example42(benchmark):
    graph = benchmark(AttackGraph, q3())
    assert [(f.relation, g.relation) for f, g in graph.edges] == [("N", "P")]


@pytest.mark.parametrize("ell", [4, 16, 64])
def test_attack_graph_hall_family(benchmark, ell):
    query = q_hall(ell)
    graph = benchmark(AttackGraph, query)
    assert graph.is_acyclic
    assert len(graph.edges) == ell  # every N_i attacks S


def test_all_named_queries_graphable(benchmark):
    def build_all():
        return [AttackGraph(q) for _, q in all_named_queries()]

    graphs = benchmark(build_all)
    assert len(graphs) == len(all_named_queries())
