"""E12 — certain answers with free variables.

Shape claims: the single-SELECT SQL path and the per-candidate
rewriting path return identical answer sets; SQL stays flat while the
per-candidate brute-force path grows with candidates x repairs.
"""

import random

import pytest

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.workloads.crm import crm_deliverable, random_crm_database
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa


@pytest.fixture(scope="module")
def poll_setup():
    db = random_poll_database(60, 12, conflict_rate=0.5,
                              rng=random.Random(41))
    return OpenQuery(poll_qa(), [Variable("p")]), db


@pytest.mark.parametrize("method", ["sql", "rewriting", "compiled"])
def test_answer_strategies(benchmark, poll_setup, method):
    open_query, db = poll_setup
    expected = certain_answers(open_query, db, "sql")
    result = benchmark(certain_answers, open_query, db, method)
    assert result == expected


def test_brute_answers_small(benchmark):
    db = random_poll_database(6, 3, conflict_rate=0.5,
                              rng=random.Random(43))
    open_query = OpenQuery(poll_qa(), [Variable("p")])
    expected = certain_answers(open_query, db, "sql")
    result = benchmark(certain_answers, open_query, db, "brute")
    assert result == expected


def test_crm_answers(benchmark):
    db = random_crm_database(40, 8, conflict_rate=0.5,
                             rng=random.Random(47))
    open_query = OpenQuery(crm_deliverable(), [Variable("i")])
    result = benchmark(certain_answers, open_query, db, "sql")
    assert result == certain_answers(open_query, db, "rewriting")
