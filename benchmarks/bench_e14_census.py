"""E14 — the small-query census.

Shape claims: classifying all 3282 queries is fast (the decision
procedure is PTIME per query), and the dichotomy's sufficiency holds on
every FO query in the space.
"""

from repro.core.classify import classify
from repro.workloads.census import enumerate_queries


def test_classify_entire_census(benchmark):
    queries = list(enumerate_queries())
    assert len(queries) == 3282

    def classify_all():
        return sum(1 for q in queries if classify(q).in_fo)

    in_fo = benchmark(classify_all)
    assert in_fo == 2659


def test_enumerate_census(benchmark):
    count = benchmark(lambda: sum(1 for _ in enumerate_queries()))
    assert count == 3282


def test_census_dichotomy_sample(benchmark):
    from repro.experiments.e14_census import dichotomy_verification_table

    def run():
        return dichotomy_verification_table(every_nth=50, dbs_per_query=1)

    table = benchmark(run)
    assert table.rows[0][2] is True
