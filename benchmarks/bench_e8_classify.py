"""E8 — Theorem 4.3 decidability: classification is polynomial in |q|.

Shape claim: classification time grows polynomially with query size
(the paper notes the acyclicity test is PTIME).
"""

import pytest

from repro.core.classify import classify
from repro.workloads.generators import QueryParams, random_query
from repro.workloads.queries import q_hall


@pytest.mark.parametrize("n_atoms", [4, 8, 16])
def test_classify_random_queries(benchmark, rng, n_atoms):
    # A small variable pool keeps the co-occurrence graph dense enough
    # that weakly-guarded queries exist at every size.
    params = QueryParams(
        n_positive=n_atoms // 2,
        n_negative=n_atoms - n_atoms // 2,
        n_variables=4,
    )
    queries = [random_query(params, rng) for _ in range(5)]

    def classify_all():
        return [classify(q) for q in queries]

    results = benchmark(classify_all)
    assert len(results) == 5


@pytest.mark.parametrize("ell", [8, 32])
def test_classify_hall_family(benchmark, ell):
    query = q_hall(ell)
    result = benchmark(classify, query)
    assert result.in_fo


def test_shape_polynomial_growth():
    from repro.experiments.harness import timed

    _, t_small = timed(classify, q_hall(8), repeat=3)
    _, t_large = timed(classify, q_hall(32), repeat=3)
    # 4x atoms: allow generous polynomial headroom but reject exponential.
    assert t_large < max(t_small, 1e-4) * 300
