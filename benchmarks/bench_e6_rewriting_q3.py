"""E6 — Examples 4.5 / 6.11: rewriting construction and equivalence
with the paper's hand-written formulas.
"""

from repro.cqa.rewriting import consistent_rewriting
from repro.experiments.e6_rewriting_q3 import (equivalence_table, paper_rewriting_q3)
from repro.fo.eval import Evaluator
from repro.workloads.generators import random_small_database
from repro.workloads.queries import q3, q_example611


def test_construct_q3_rewriting(benchmark):
    formula = benchmark(consistent_rewriting, q3())
    from repro.fo.formula import free_variables

    assert free_variables(formula) == frozenset()


def test_construct_611_rewriting(benchmark):
    formula = benchmark(consistent_rewriting, q_example611())
    assert formula is not None


def test_evaluate_constructed_vs_paper(benchmark, rng):
    query = q3()
    ours = consistent_rewriting(query)
    paper = paper_rewriting_q3()
    db = random_small_database(query, rng, domain_size=4,
                               facts_per_relation=8)

    ours_answer = benchmark(lambda: Evaluator(ours, db).evaluate())
    assert ours_answer == Evaluator(paper, db).evaluate()


def test_equivalence_shape():
    table = equivalence_table(trials=15, seed=99)
    assert all(row[-1] is True for row in table.rows)
