"""E1 — Figure 1 / Example 1.1 / Lemma 5.2: CERTAINTY(q1) vs matching.

Shape claim: the matching solver is polynomial and beats brute-force
repair enumeration as soon as blocks multiply; both agree exactly.
"""

import pytest

from repro.cqa.brute_force import is_certain_brute_force
from repro.matching.bpm_certainty import is_certain_q1
from repro.reductions.bpm import bpm_to_database
from repro.workloads.bipartite import (
    bipartite_with_perfect_matching,
    figure_1_graph,
)
from repro.workloads.queries import q1


def test_figure1_certainty(benchmark):
    db = bpm_to_database(figure_1_graph())
    result = benchmark(is_certain_q1, db)
    assert result is False  # the Alice-George / Maria-Bob pairing exists


@pytest.mark.parametrize("m", [4, 16, 64])
def test_matching_solver_scales(benchmark, rng, m):
    db = bpm_to_database(bipartite_with_perfect_matching(m, 0.3, rng))
    result = benchmark(is_certain_q1, db)
    assert result is False


def test_brute_force_small(benchmark, rng):
    db = bpm_to_database(bipartite_with_perfect_matching(4, 0.3, rng))
    result = benchmark(is_certain_brute_force, q1(), db)
    assert result is is_certain_q1(db)


def test_shape_matching_beats_brute(rng):
    """The crossover claim, asserted rather than eyeballed."""
    from repro.experiments.harness import timed

    db = bpm_to_database(bipartite_with_perfect_matching(6, 0.3, rng))
    _, t_fast = timed(is_certain_q1, db, repeat=3)
    _, t_brute = timed(is_certain_brute_force, q1(), db)
    assert t_fast < t_brute
