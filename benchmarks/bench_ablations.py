"""Ablation benches for the design choices called out in DESIGN.md.

* guard-driven quantifier enumeration in the FO evaluator vs naive
  active-domain enumeration;
* formula simplification on/off (size and evaluation time);
* memoization in the interpreted Algorithm 1;
* early-exit in brute-force repair enumeration.
"""

import itertools
import random

import pytest

from repro.core.terms import is_variable
from repro.cqa.is_certain import CertaintyInterpreter
from repro.cqa.rewriting import consistent_rewriting
from repro.db.satisfaction import satisfies
from repro.db.repairs import iter_repairs
from repro.fo.eval import Evaluator
from repro.fo.formula import (
    And, AtomF, Eq, Exists, Falsum, Forall, Not, Or, Verum, constants_of,
)
from repro.fo.stats import stats
from repro.workloads.generators import random_small_database
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa, q3, q_hall


def naive_evaluate(formula, db) -> bool:
    """Reference evaluator: quantifiers enumerate the full active domain."""
    consts = {c.value for c in constants_of(formula)}
    adom = sorted(db.active_domain() | consts, key=repr)

    def go(g, env):
        if isinstance(g, Verum):
            return True
        if isinstance(g, Falsum):
            return False
        if isinstance(g, AtomF):
            row = tuple(env[t] if is_variable(t) else t.value
                        for t in g.atom.terms)
            return db.contains(g.atom.relation, row)
        if isinstance(g, Eq):
            lv = env[g.lhs] if is_variable(g.lhs) else g.lhs.value
            rv = env[g.rhs] if is_variable(g.rhs) else g.rhs.value
            return lv == rv
        if isinstance(g, Not):
            return not go(g.sub, env)
        if isinstance(g, And):
            return all(go(s, env) for s in g.subs)
        if isinstance(g, Or):
            return any(go(s, env) for s in g.subs)
        if isinstance(g, (Exists, Forall)):
            combos = itertools.product(adom, repeat=len(g.vars))
            results = (go(g.sub, {**env, **dict(zip(g.vars, c))})
                       for c in combos)
            return any(results) if isinstance(g, Exists) else all(results)
        raise TypeError(g)

    return go(formula, {})


@pytest.fixture(scope="module")
def qa_setup():
    db = random_poll_database(15, 5, conflict_rate=0.5,
                              rng=random.Random(31))
    formula = consistent_rewriting(poll_qa())
    return formula, db


def test_ablation_guarded_eval(benchmark, qa_setup):
    formula, db = qa_setup
    expected = naive_evaluate(formula, db)
    result = benchmark(lambda: Evaluator(formula, db).evaluate())
    assert result == expected


def test_ablation_naive_eval(benchmark, qa_setup):
    formula, db = qa_setup
    result = benchmark(naive_evaluate, formula, db)
    assert isinstance(result, bool)


def test_shape_guarded_eval_wins(qa_setup):
    from repro.experiments.harness import timed

    formula, db = qa_setup
    _, t_guarded = timed(lambda: Evaluator(formula, db).evaluate(), repeat=3)
    _, t_naive = timed(naive_evaluate, formula, db)
    assert t_guarded < t_naive


def test_ablation_simplified_rewriting(benchmark, rng):
    query = q_hall(3)
    simplified = consistent_rewriting(query, simplify=True)
    raw = consistent_rewriting(query, simplify=False)
    assert stats(simplified).nodes <= stats(raw).nodes
    db = random_small_database(query, rng, domain_size=3,
                               facts_per_relation=5)
    expected = Evaluator(raw, db).evaluate()
    result = benchmark(lambda: Evaluator(simplified, db).evaluate())
    assert result == expected


def test_ablation_interpreter_memoized(benchmark, rng):
    query = q3()
    db = random_small_database(query, rng, domain_size=4,
                               facts_per_relation=10)
    expected = CertaintyInterpreter(query, db, memoize=False).run(query)
    result = benchmark(
        lambda: CertaintyInterpreter(query, db, memoize=True).run(query))
    assert result == expected


def test_ablation_interpreter_unmemoized(benchmark, rng):
    query = q3()
    db = random_small_database(query, rng, domain_size=4,
                               facts_per_relation=10)
    result = benchmark(
        lambda: CertaintyInterpreter(query, db, memoize=False).run(query))
    assert isinstance(result, bool)


def test_ablation_brute_early_exit(benchmark):
    """Early exit pays off when a falsifying repair exists."""
    from repro.cqa.brute_force import is_certain_brute_force

    rng = random.Random(33)
    query = q3()
    db = random_small_database(query, rng, domain_size=3,
                               facts_per_relation=8)

    def full_scan():
        return all(satisfies(r, query)
                   for r in iter_repairs(db.restrict(["P", "N"])))

    expected = full_scan()
    result = benchmark(is_certain_brute_force, query, db)
    assert result == expected
