"""E11 — the practicality claim: full strategy comparison and the
exponential/polynomial crossover.
"""

import random

import pytest

from repro.cqa.engine import CertaintyEngine
from repro.db.sqlite_backend import load_database
from repro.fo.sql import compile_to_sql
from repro.workloads.poll import random_poll_database
from repro.workloads.queries import poll_qa


@pytest.fixture(scope="module")
def engine():
    return CertaintyEngine(poll_qa())


@pytest.fixture(scope="module")
def big_db():
    return random_poll_database(150, 25, conflict_rate=0.5,
                                rng=random.Random(7))


@pytest.mark.parametrize("method", ["rewriting", "compiled", "sql", "interpreted"])
def test_fo_strategies_on_large_db(benchmark, engine, big_db, method):
    expected = engine.certain(big_db, "rewriting")
    result = benchmark(engine.certain, big_db, method)
    assert result == expected


def test_warm_sql(benchmark, engine, big_db):
    conn = load_database(big_db)
    sql = compile_to_sql(engine.rewriting, big_db.schemas)
    expected = engine.certain(big_db, "rewriting")
    result = benchmark(lambda: bool(conn.execute(sql).fetchone()[0]))
    assert result == expected
    conn.close()


def test_brute_force_crossover(benchmark, engine):
    db = random_poll_database(10, 3, conflict_rate=0.5,
                              rng=random.Random(9))
    expected = engine.certain(db, "rewriting")
    result = benchmark(engine.certain, db, "brute")
    assert result == expected


def test_shape_repairs_explode_but_fo_does_not(engine):
    from repro.experiments.harness import timed

    rng = random.Random(11)
    small = random_poll_database(20, 5, conflict_rate=0.5, rng=rng)
    large = random_poll_database(200, 30, conflict_rate=0.5, rng=rng)
    assert large.restrict(set(poll_qa().relations)).repair_count() > 10 ** 9
    answer, t_large = timed(engine.certain, large, "sql", repeat=2)
    assert isinstance(answer, bool)
    assert t_large < 2.0  # single SQL query, no repair enumeration
