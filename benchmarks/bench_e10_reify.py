"""E10 — Proposition 7.2: the non-reifiability gadget.

Shape claim: gadget construction is cheap and every produced instance
exhibits non-reifiability end to end.
"""

from repro.core.terms import Constant, Variable
from repro.cqa.brute_force import is_certain_brute_force
from repro.reductions.reify_gadget import build_gadget
from repro.workloads.queries import q1, q3


def test_build_gadget(benchmark):
    query = q1()
    gadget = benchmark(build_gadget, query, query.atom_for("R"), Variable("y"))
    assert gadget.db.repair_count() == 2


def test_gadget_verification(benchmark):
    query = q3()
    gadget = build_gadget(query, query.atom_for("N"), Variable("x"))

    def verify():
        ok = is_certain_brute_force(query, gadget.db)
        for c in (gadget.constant_a, gadget.constant_b):
            grounded = query.substitute({Variable("x"): Constant(c)})
            ok = ok and not is_certain_brute_force(grounded, gadget.db)
        return ok

    assert benchmark(verify) is True
