"""E9 — Lemmas 5.4/5.6/5.7: reduction gadgets.

Shape claims: the database transformers are linear-time and preserve
certainty (asserted against brute force on small instances).
"""

from repro.cqa.brute_force import is_certain_brute_force
from repro.reductions.drop_negated import reduce_database
from repro.reductions.gadgets import reduce_lemma_5_6, reduce_lemma_5_7
from repro.workloads.generators import random_small_database
from repro.workloads.queries import poll_q1, poll_q2, q1, q2, q_hall


def test_lemma54_transform(benchmark, rng):
    sub, full = q_hall(1), q_hall(3)
    db = random_small_database(sub, rng, domain_size=3, facts_per_relation=6)
    out = benchmark(reduce_database, sub, full, db)
    assert is_certain_brute_force(sub, db) == is_certain_brute_force(full, out)


def test_lemma56_transform(benchmark, rng):
    target = poll_q1()
    f, g = target.atom_for("Mayor"), target.atom_for("Lives")
    db = random_small_database(q1(), rng, domain_size=3, facts_per_relation=5)

    def run():
        return reduce_lemma_5_6(target, f, g, db)

    _, out = benchmark(run)
    assert is_certain_brute_force(q1(), db) == \
        is_certain_brute_force(target, out)


def test_lemma57_transform(benchmark, rng):
    target = poll_q2()
    f, g = target.atom_for("Lives"), target.atom_for("Mayor")
    db = random_small_database(q2(), rng, domain_size=3, facts_per_relation=5)

    def run():
        return reduce_lemma_5_7(target, f, g, db)

    _, out = benchmark(run)
    assert is_certain_brute_force(q2(), db) == \
        is_certain_brute_force(target, out)
