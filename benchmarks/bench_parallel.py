"""Sharded parallel executor vs serial compiled plan (smoke grid).

The committed performance evidence lives in BENCH_parallel.json
(``scripts/bench_parallel.py``); this module is the CI-sized version:
small databases, ``jobs=2``, agreement asserted on every point.  At
these sizes the parallel path is not expected to win — the assertion
of interest is semantic (identical answers through real partitioning,
forked workers, and merging), plus a sanity bound on overhead.
"""

import random

import pytest

from repro.core.terms import Variable
from repro.cqa.certain_answers import OpenQuery, certain_answers
from repro.parallel import parallel_certain_answers, shutdown_pools
from repro.parallel.pool import fork_context
from repro.workloads.poll import adversarial_poll_database, random_poll_database
from repro.workloads.queries import poll_qa

pytestmark = pytest.mark.skipif(
    fork_context() is None, reason="platform has no fork start method"
)

SIZES = [(800, 8), (2000, 8)]
JOBS = 2


@pytest.fixture(scope="module", autouse=True)
def _pools():
    yield
    shutdown_pools()


@pytest.fixture(scope="module")
def open_query():
    return OpenQuery(poll_qa(), [Variable("p")])


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_serial_compiled(benchmark, open_query, size):
    people, towns = size
    db = random_poll_database(people, towns, likes_per_person=8,
                              conflict_rate=0.6, rng=random.Random(7))
    benchmark(certain_answers, open_query, db, "compiled")


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_parallel_jobs2(benchmark, open_query, size):
    people, towns = size
    db = random_poll_database(people, towns, likes_per_person=8,
                              conflict_rate=0.6, rng=random.Random(7))
    expected = certain_answers(open_query, db, "compiled")
    # Warm the pool outside the timed region: steady-state latency is
    # the quantity BENCH_parallel.json tracks.
    assert parallel_certain_answers(
        db=db, open_query=open_query, jobs=JOBS, min_facts=0, shard_factor=8
    ) == expected

    def run():
        result = parallel_certain_answers(
            open_query, db, jobs=JOBS, min_facts=0, shard_factor=8
        )
        assert result == expected
        return result

    benchmark(run)


def test_parallel_agreement_adversarial(open_query):
    db = adversarial_poll_database(3000, 16, rng=random.Random(5))
    serial = certain_answers(open_query, db, "compiled")
    par = parallel_certain_answers(open_query, db, jobs=JOBS, min_facts=0,
                                   shard_factor=8)
    assert par == serial
    assert sorted(map(repr, par)) == sorted(map(repr, serial))
