"""E3 — Figure 3 / Example 7.1: the combinatorial q4 solver.

Shape claims: the solver is linear-time, agrees with brute force, and
the counting shortcut dominates (m*n > m+n instances are instant).
"""

import pytest

from repro.cqa.brute_force import is_certain_brute_force
from repro.experiments.e3_q4 import figure3_database
from repro.reductions.q4 import is_certain_q4
from repro.workloads.generators import random_small_database
from repro.workloads.queries import q4

from conftest import rng  # noqa: F401  (fixture re-export)
from repro.core.atoms import RelationSchema
from repro.db.database import Database


def _big_db(m, rng):
    db = Database([
        RelationSchema("X", 1, 1), RelationSchema("Y", 1, 1),
        RelationSchema("R", 2, 1), RelationSchema("S", 2, 1),
    ])
    for i in range(m):
        db.add("X", (f"a{i}",))
        db.add("Y", (f"b{i}",))
        db.add("R", (f"a{i}", f"b{rng.randrange(m)}"))
        db.add("S", (f"b{i}", f"a{rng.randrange(m)}"))
    return db


def test_figure3(benchmark):
    db = figure3_database()
    result = benchmark(is_certain_q4, db)
    assert result is True


@pytest.mark.parametrize("m", [16, 128, 1024])
def test_q4_solver_scales(benchmark, rng, m):
    db = _big_db(m, rng)
    result = benchmark(is_certain_q4, db)
    assert result is True  # m*m > 2m for m >= 3


def test_brute_force_small(benchmark, rng):
    db = random_small_database(q4(), rng, domain_size=3, facts_per_relation=3)
    expected = is_certain_q4(db)
    result = benchmark(is_certain_brute_force, q4(), db)
    assert result == expected


def test_shape_solver_flat(rng):
    from repro.experiments.harness import timed

    _, t_small = timed(is_certain_q4, _big_db(8, rng), repeat=3)
    _, t_big = timed(is_certain_q4, _big_db(2048, rng), repeat=3)
    # Linear-ish: 256x more data should not cost 5000x more time.
    assert t_big < max(t_small, 1e-4) * 5000
